// watch.hpp — mph_watch: live health rules over mph_mon snapshots.
//
// mph_mon (metrics.hpp) publishes raw counters; mph_watch turns them into
// *judgements* while the job runs: a small ring of recent MetricsSnapshots
// gives per-interval deltas and rates, a declarative rule set evaluates
// each new snapshot against thresholds, and hysteresis (fire after N
// consecutive breaches, clear after M consecutive OKs) keeps a noisy
// boundary from flapping.  Rule firings and clears are emitted as
// structured HealthEvent JSONL (logs/mph_health.jsonl) and as Prometheus
// alert gauges appended to the monitor's exposition, so an operator —
// or the steering loop in run_coupled_component — can *act* on a stalled
// or slow component instead of reading counters after the fact.
//
// The rules (DESIGN.md §17):
//
//   * stall       — a component spent >= stall_blocked_pct% of the
//                   interval blocked AND delivered nothing (critical);
//   * queue       — a component's unmatched backlog is past queue_high
//                   (warning: unbounded queues are the job's memory);
//   * latency_p99 — p99 of the match-latency log2 histogram over the
//                   retained window crossed latency_p99_ns (warning);
//   * imbalance   — the busiest component's busy share is imbalance_ratio
//                   times the mean busy share (warning; this is the alert
//                   the scenario steering consumes to drive
//                   weights_from_metrics -> Rebalancer -> repartition);
//   * fault_burn  — the job burned >= fault_budget of its injected-fault /
//                   liveness-retry budget (warning; monotone, so it fires
//                   once and stays active);
//   * member_down — a rank's alive flag dropped (critical; immediate, no
//                   debounce — death is not noise).
//
// Flight recording: when a rule *fires* (transitions to active) at
// warning-or-worse severity and a flight recorder is installed (the Job
// wires Job::trace_report when tracing is on), the Watcher drains the
// TraceRing window, runs the mph_prof critical-path stitcher on it, writes
// the annotated Chrome JSON next to the health log, and stamps the event
// with the top blame component — every alert ships with *who*, not just
// *what*.
//
// Cost discipline (the Checker/Tracer/Metrics contract): watching is
// opt-in via JobOptions::watch / MINIMPI_WATCH.  When off, Job::watcher()
// is null and nothing is allocated or evaluated; rank hot paths are never
// touched either way — the Watcher runs entirely on the monitor-thread
// reader side of the metrics registry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/metrics.hpp"
#include "src/minimpi/trace.hpp"

namespace minimpi::watch {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Per-job watch configuration.  Merged with the MINIMPI_WATCH environment
/// variable at Job construction (the union of both enables).
struct WatchOptions {
  /// Master switch: allocates the Watcher (and a metrics registry if
  /// monitoring alone did not already).
  bool enabled = false;

  /// stall: blocked share of the interval (percent) above which a
  /// component that also delivered nothing counts as stalled.
  double stall_blocked_pct = 80.0;

  /// queue: unmatched-backlog depth (summed over a component's ranks)
  /// counting as runaway growth.
  std::uint64_t queue_high = 64;

  /// latency_p99: match-latency p99 threshold over the retained window.
  std::uint64_t latency_p99_ns = 100'000'000;  // 100 ms

  /// latency_p99: minimum matches in the window before the percentile is
  /// trusted (a 2-sample p99 is noise).
  std::uint64_t latency_min_count = 16;

  /// imbalance: max/mean busy-share ratio across components that fires the
  /// steering alert.
  double imbalance_ratio = 2.0;

  /// fault_burn: cumulative fault count (fault-plan rules fired plus
  /// liveness retries burned) that flags the budget as burning.
  std::uint64_t fault_budget = 16;

  /// Hysteresis: consecutive breaching snapshots before a rule fires, and
  /// consecutive clean snapshots before an active alert clears.
  int fire_after = 2;
  int clear_after = 2;

  /// Snapshots retained for windowed derivations (p99, burn rate).
  std::size_t window = 32;

  /// Drain the trace ring and attach critical-path blame to every fired
  /// warning/critical event (needs tracing on; off saves the dump I/O).
  bool flight_record = true;

  /// Directory for the health JSONL and flight-record dumps (the monitor's
  /// dir by default — Job aligns them when only one was configured).
  std::string dir = "logs";

  [[nodiscard]] std::string health_path() const {
    return dir + "/mph_health.jsonl";
  }
  [[nodiscard]] std::string flight_path(std::uint64_t seq) const {
    return dir + "/mph_flight_" + std::to_string(seq) + ".json";
  }

  /// Parse a MINIMPI_WATCH-style value: "1"/"on" enable; a comma/space
  /// list may add "stall=PCT", "queue=N", "p99ms=N", "imbalance=X",
  /// "faults=N", "fire=N", "clear=N", "window=N", "dir=PATH", and
  /// "noflight".  Unknown tokens are ignored.
  [[nodiscard]] static WatchOptions parse(std::string_view text);

  /// This set of options unioned with what MINIMPI_WATCH enables.
  [[nodiscard]] WatchOptions merged_with_env() const;
};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

enum class Severity : std::uint8_t { info, warning, critical };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// One rule transition: fired (cleared == false) or cleared.  Serialized
/// as one JSONL line (kind == "mph_health") in the watch dir.
struct HealthEvent {
  /// Top-level "kind" marker of the JSONL line — how tooling tells a
  /// health stream from a metrics stream.
  static constexpr const char* kKind = "mph_health";

  std::uint64_t seq = 0;      ///< snapshot sequence the rule fired on
  std::uint64_t t_ns = 0;     ///< job clock of that snapshot
  std::uint64_t wall_ms = 0;  ///< wall-clock epoch milliseconds
  std::string rule;           ///< "stall", "queue", "latency_p99", ...
  Severity severity = Severity::warning;
  bool cleared = false;       ///< true for the recovery edge of an alert
  std::string subject;        ///< component (or "rank N") the rule judged
  double value = 0.0;         ///< measured value that breached
  double threshold = 0.0;     ///< configured threshold it breached
  std::string message;        ///< human-readable one-liner
  /// Flight-record attribution, set on fired warning/critical events when
  /// a recorder was installed: the top critical-path component and the
  /// annotated Chrome JSON the window was dumped to.
  std::string blame;
  std::string flight_file;

  /// One JSON object on a single line (no trailing newline).
  [[nodiscard]] std::string to_jsonl() const;
};

// ---------------------------------------------------------------------------
// Watcher
// ---------------------------------------------------------------------------

/// The rule engine.  Thread safe: the monitor thread feeds observe() every
/// publish interval, while steering code (or a test) may feed snapshots of
/// its own and query the alert state — all under one mutex; nothing here
/// runs on rank hot paths.
class Watcher {
 public:
  /// Drains the live trace rings for a flight-record dump (the Job wires
  /// Job::trace_report).  Must be safe to call while ranks still run.
  using FlightFn = std::function<TraceReport()>;

  explicit Watcher(WatchOptions options);

  Watcher(const Watcher&) = delete;
  Watcher& operator=(const Watcher&) = delete;

  [[nodiscard]] const WatchOptions& options() const noexcept {
    return options_;
  }

  /// Install the flight recorder (null disables dumps).
  void set_flight_recorder(FlightFn fn);

  /// Evaluate one snapshot against every rule; returns the events this
  /// snapshot produced (also recorded internally and appended to the
  /// health JSONL).  Snapshots must arrive with increasing seq — a stale
  /// or duplicate frame is ignored.
  std::vector<HealthEvent> observe(const MetricsSnapshot& snap);

  /// Every event recorded so far, in firing order.
  [[nodiscard]] std::vector<HealthEvent> events() const;

  /// Number of alerts active right now.
  [[nodiscard]] std::size_t active_alerts() const;

  /// Prometheus text for the alert gauges (mph_watch_alert per tracked
  /// rule/subject, plus mph_watch_events_total) — the monitor thread
  /// appends this to the exposition file every publish.
  [[nodiscard]] std::string alert_gauges() const;

  /// Steering handshake: true when an imbalance alert fired since the last
  /// call (consumed — the next call reports false until it fires again).
  /// The scenario drivers poll this at interval boundaries.
  [[nodiscard]] bool consume_imbalance_alert();

 private:
  struct RuleState {
    int breaches = 0;  ///< consecutive breaching snapshots
    int oks = 0;       ///< consecutive clean snapshots while active
    bool active = false;
  };

  /// One rule observation on one subject: breach=true counts toward
  /// firing, breach=false toward clearing.  Returns the event to emit
  /// (fired or cleared transition), if any.
  void judge(const std::string& rule, const std::string& subject, bool breach,
             Severity severity, double value, double threshold,
             const std::string& message, const MetricsSnapshot& snap,
             std::vector<HealthEvent>& out);

  void attach_flight_record(const MetricsSnapshot& snap,
                            std::vector<HealthEvent>& fired);
  void append_health_lines(const std::vector<HealthEvent>& events);

  WatchOptions options_;
  mutable std::mutex mutex_;
  FlightFn flight_;
  std::deque<MetricsSnapshot> ring_;  ///< oldest..newest retained snapshots
  std::map<std::string, RuleState> states_;  ///< keyed "rule/subject"
  std::vector<HealthEvent> events_;
  bool imbalance_pending_ = false;
  bool dir_ready_ = false;
};

}  // namespace minimpi::watch
