#include "src/minimpi/watch/watch.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/minimpi/prof/profile.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi::watch {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

WatchOptions WatchOptions::parse(std::string_view text) {
  WatchOptions opts;
  const auto number = [](std::string_view token, std::size_t prefix) {
    const std::string value(token.substr(prefix));
    return std::strtod(value.c_str(), nullptr);
  };
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find_first_of(", ", start);
    const std::string_view token =
        text.substr(start, end == std::string_view::npos ? end : end - start);
    if (token == "1" || token == "on" || token == "true") {
      opts.enabled = true;
    } else if (token.rfind("stall=", 0) == 0) {
      opts.enabled = true;
      opts.stall_blocked_pct = number(token, 6);
    } else if (token.rfind("queue=", 0) == 0) {
      opts.enabled = true;
      opts.queue_high = static_cast<std::uint64_t>(number(token, 6));
    } else if (token.rfind("p99ms=", 0) == 0) {
      opts.enabled = true;
      opts.latency_p99_ns =
          static_cast<std::uint64_t>(number(token, 6) * 1e6);
    } else if (token.rfind("imbalance=", 0) == 0) {
      opts.enabled = true;
      opts.imbalance_ratio = number(token, 10);
    } else if (token.rfind("faults=", 0) == 0) {
      opts.enabled = true;
      opts.fault_budget = static_cast<std::uint64_t>(number(token, 7));
    } else if (token.rfind("fire=", 0) == 0) {
      opts.enabled = true;
      opts.fire_after = std::max(1, static_cast<int>(number(token, 5)));
    } else if (token.rfind("clear=", 0) == 0) {
      opts.enabled = true;
      opts.clear_after = std::max(1, static_cast<int>(number(token, 6)));
    } else if (token.rfind("window=", 0) == 0) {
      opts.enabled = true;
      opts.window = std::max<std::size_t>(
          2, static_cast<std::size_t>(number(token, 7)));
    } else if (token.rfind("dir=", 0) == 0) {
      opts.enabled = true;
      opts.dir = std::string(token.substr(4));
    } else if (token == "noflight") {
      opts.flight_record = false;
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return opts;
}

WatchOptions WatchOptions::merged_with_env() const {
  WatchOptions merged = *this;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at job construction.
  const char* env = std::getenv("MINIMPI_WATCH");
  if (env == nullptr) return merged;
  const WatchOptions from_env = parse(env);
  if (from_env.enabled) {
    // The environment both enables and configures, the MINIMPI_MONITOR
    // convention: exported thresholds win over defaults the program never
    // touched.
    merged.enabled = true;
    const WatchOptions defaults;
    if (from_env.stall_blocked_pct != defaults.stall_blocked_pct) {
      merged.stall_blocked_pct = from_env.stall_blocked_pct;
    }
    if (from_env.queue_high != defaults.queue_high) {
      merged.queue_high = from_env.queue_high;
    }
    if (from_env.latency_p99_ns != defaults.latency_p99_ns) {
      merged.latency_p99_ns = from_env.latency_p99_ns;
    }
    if (from_env.imbalance_ratio != defaults.imbalance_ratio) {
      merged.imbalance_ratio = from_env.imbalance_ratio;
    }
    if (from_env.fault_budget != defaults.fault_budget) {
      merged.fault_budget = from_env.fault_budget;
    }
    if (from_env.fire_after != defaults.fire_after) {
      merged.fire_after = from_env.fire_after;
    }
    if (from_env.clear_after != defaults.clear_after) {
      merged.clear_after = from_env.clear_after;
    }
    if (from_env.window != defaults.window) merged.window = from_env.window;
    if (from_env.dir != defaults.dir) merged.dir = from_env.dir;
    merged.flight_record = merged.flight_record && from_env.flight_record;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::info: return "info";
    case Severity::warning: return "warning";
    case Severity::critical: return "critical";
  }
  return "unknown";
}

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double value) {
  // JSON has no infinity/NaN; clamp the pathological cases to 0.
  if (!(value == value) || value > 1e300 || value < -1e300) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

std::string HealthEvent::to_jsonl() const {
  std::string out;
  out.reserve(256);
  out += "{\"kind\": \"";
  out += kKind;
  out += "\", \"seq\": " + std::to_string(seq) +
         ", \"tNs\": " + std::to_string(t_ns) +
         ", \"wallMs\": " + std::to_string(wall_ms) + ", \"rule\": \"";
  append_json_escaped(out, rule);
  out += "\", \"severity\": \"";
  out += severity_name(severity);
  out += "\", \"cleared\": ";
  out += cleared ? "true" : "false";
  out += ", \"subject\": \"";
  append_json_escaped(out, subject);
  out += "\", \"value\": " + json_number(value) +
         ", \"threshold\": " + json_number(threshold) + ", \"message\": \"";
  append_json_escaped(out, message);
  out += "\", \"blame\": \"";
  append_json_escaped(out, blame);
  out += "\", \"flightFile\": \"";
  append_json_escaped(out, flight_file);
  out += "\"}";
  return out;
}

// ---------------------------------------------------------------------------
// Watcher
// ---------------------------------------------------------------------------

Watcher::Watcher(WatchOptions options) : options_(std::move(options)) {}

void Watcher::set_flight_recorder(FlightFn fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  flight_ = std::move(fn);
}

namespace {

/// Windowed per-component aggregate the rules judge.
struct CompWindow {
  std::string component;
  int ranks = 0;
  int alive = 0;
  std::uint64_t delivered_delta = 0;
  std::uint64_t blocked_delta = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t faults = 0;  ///< cumulative (monotone)
  HistogramData latency_delta;  ///< over the whole retained window
};

/// p99 of a log2 histogram: the upper bound of the first bucket whose
/// cumulative count covers 99% of the events.
std::uint64_t histogram_p99(const HistogramData& h) {
  if (h.count == 0) return 0;
  const std::uint64_t target =
      std::max<std::uint64_t>(1, (h.count * 99 + 99) / 100);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kMetricsHistogramBuckets; ++b) {
    cumulative += h.buckets[b];
    if (cumulative >= target) return metrics_histogram_upper(b);
  }
  return metrics_histogram_upper(kMetricsHistogramBuckets - 1);
}

std::vector<CompWindow> component_windows(const MetricsSnapshot& cur,
                                          const MetricsSnapshot& prev,
                                          const MetricsSnapshot& oldest) {
  std::vector<CompWindow> out;
  const auto find_rank = [](const MetricsSnapshot& snap, rank_t rank)
      -> const RankMetrics* {
    for (const RankMetrics& r : snap.ranks) {
      if (r.world_rank == rank) return &r;
    }
    return nullptr;
  };
  for (const RankMetrics& r : cur.ranks) {
    const std::string& name =
        r.component.empty() ? std::string("rank") : r.component;
    auto it = std::find_if(
        out.begin(), out.end(),
        [&](const CompWindow& c) { return c.component == name; });
    if (it == out.end()) {
      out.push_back(CompWindow{});
      it = out.end() - 1;
      it->component = name;
    }
    it->ranks += 1;
    it->alive += r.alive ? 1 : 0;
    it->queue_depth += r.queue_depth;
    it->faults += r.faults;
    const RankMetrics* p = find_rank(prev, r.world_rank);
    if (p != nullptr) {
      it->delivered_delta += r.delivered >= p->delivered
                                 ? r.delivered - p->delivered
                                 : 0;
      it->blocked_delta += r.blocked_ns >= p->blocked_ns
                               ? r.blocked_ns - p->blocked_ns
                               : 0;
    }
    const RankMetrics* o = find_rank(oldest, r.world_rank);
    if (o != nullptr) {
      const HistogramData& now = r.match_latency;
      const HistogramData& then = o->match_latency;
      it->latency_delta.count +=
          now.count >= then.count ? now.count - then.count : 0;
      it->latency_delta.sum += now.sum >= then.sum ? now.sum - then.sum : 0;
      for (std::size_t b = 0; b < kMetricsHistogramBuckets; ++b) {
        it->latency_delta.buckets[b] += now.buckets[b] >= then.buckets[b]
                                            ? now.buckets[b] - then.buckets[b]
                                            : 0;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<HealthEvent> Watcher::observe(const MetricsSnapshot& snap) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.empty() && snap.seq <= ring_.back().seq) return {};  // stale

  std::vector<HealthEvent> produced;
  if (!ring_.empty()) {
    const MetricsSnapshot& prev = ring_.back();
    const MetricsSnapshot& oldest = ring_.front();
    const std::uint64_t dt_ns = snap.t_ns > prev.t_ns
                                    ? snap.t_ns - prev.t_ns
                                    : 0;
    const std::vector<CompWindow> comps =
        component_windows(snap, prev, oldest);

    // --- member_down: immediate, per rank, no debounce -------------------
    for (const RankMetrics& r : snap.ranks) {
      const auto p = std::find_if(prev.ranks.begin(), prev.ranks.end(),
                                  [&](const RankMetrics& m) {
                                    return m.world_rank == r.world_rank;
                                  });
      if (p == prev.ranks.end()) continue;
      const std::string key =
          "member_down/rank " + std::to_string(r.world_rank);
      RuleState& state = states_[key];
      if (p->alive && !r.alive && !state.active) {
        state.active = true;
        HealthEvent ev;
        ev.seq = snap.seq;
        ev.t_ns = snap.t_ns;
        ev.wall_ms = snap.wall_ms;
        ev.rule = "member_down";
        ev.severity = Severity::critical;
        ev.subject = r.component.empty()
                         ? "rank " + std::to_string(r.world_rank)
                         : r.component;
        ev.value = 0;
        ev.threshold = 1;
        ev.message = "rank " + std::to_string(r.world_rank) + " (" +
                     r.component + ") stopped responding";
        produced.push_back(std::move(ev));
      } else if (!p->alive && r.alive && state.active) {
        // A healed (respawned) member: emit the recovery edge.
        state.active = false;
        HealthEvent ev;
        ev.seq = snap.seq;
        ev.t_ns = snap.t_ns;
        ev.wall_ms = snap.wall_ms;
        ev.rule = "member_down";
        ev.severity = Severity::info;
        ev.cleared = true;
        ev.subject = r.component.empty()
                         ? "rank " + std::to_string(r.world_rank)
                         : r.component;
        ev.value = 1;
        ev.threshold = 1;
        ev.message = "rank " + std::to_string(r.world_rank) + " (" +
                     r.component + ") is back";
        produced.push_back(std::move(ev));
      }
    }

    // --- per-component threshold rules (debounced) -----------------------
    double max_busy_share = 0.0;
    double busy_share_sum = 0.0;
    int busy_comps = 0;
    std::string busiest;
    for (const CompWindow& c : comps) {
      // stall: blocked nearly the whole interval and nothing arrived.
      if (dt_ns > 0) {
        const double wall = static_cast<double>(dt_ns) *
                            std::max(1, c.ranks);
        const double blocked_pct =
            100.0 * static_cast<double>(c.blocked_delta) / wall;
        judge("stall", c.component,
              blocked_pct >= options_.stall_blocked_pct &&
                  c.delivered_delta == 0,
              Severity::critical, blocked_pct, options_.stall_blocked_pct,
              c.component + " blocked " +
                  std::to_string(static_cast<int>(blocked_pct)) +
                  "% of the interval with zero deliveries",
              snap, produced);

        // imbalance inputs: busy share of the interval per component.
        const double busy =
            std::max(0.0, wall - static_cast<double>(c.blocked_delta));
        const double share = busy / wall;
        busy_share_sum += share;
        ++busy_comps;
        if (share > max_busy_share) {
          max_busy_share = share;
          busiest = c.component;
        }
      }

      // queue growth past the high-water threshold.
      judge("queue", c.component, c.queue_depth >= options_.queue_high,
            Severity::warning, static_cast<double>(c.queue_depth),
            static_cast<double>(options_.queue_high),
            c.component + " has " + std::to_string(c.queue_depth) +
                " unmatched envelopes queued",
            snap, produced);

      // match-latency p99 over the retained window.
      if (c.latency_delta.count >= options_.latency_min_count) {
        const std::uint64_t p99 = histogram_p99(c.latency_delta);
        judge("latency_p99", c.component, p99 >= options_.latency_p99_ns,
              Severity::warning, static_cast<double>(p99),
              static_cast<double>(options_.latency_p99_ns),
              c.component + " match-latency p99 is " +
                  std::to_string(p99 / 1000000) + " ms",
              snap, produced);
      }

      // fault/liveness budget burn (cumulative, monotone).
      judge("fault_burn", c.component, c.faults >= options_.fault_budget,
            Severity::warning, static_cast<double>(c.faults),
            static_cast<double>(options_.fault_budget),
            c.component + " burned " + std::to_string(c.faults) +
                " of its fault budget",
            snap, produced);
    }

    // cross-component imbalance: the busiest component vs the mean.
    if (busy_comps >= 2 && busy_share_sum > 0.0) {
      const double mean = busy_share_sum / busy_comps;
      const double ratio = mean > 0.0 ? max_busy_share / mean : 0.0;
      judge("imbalance", busiest, ratio >= options_.imbalance_ratio,
            Severity::warning, ratio, options_.imbalance_ratio,
            busiest + " busy share is " + json_number(ratio) +
                "x the component mean",
            snap, produced);
    }
  }

  ring_.push_back(snap);
  while (ring_.size() > options_.window) ring_.pop_front();

  if (!produced.empty()) {
    attach_flight_record(snap, produced);
    for (const HealthEvent& ev : produced) {
      if (!ev.cleared && ev.rule == "imbalance") imbalance_pending_ = true;
      events_.push_back(ev);
    }
    append_health_lines(produced);
  }
  return produced;
}

void Watcher::judge(const std::string& rule, const std::string& subject,
                    bool breach, Severity severity, double value,
                    double threshold, const std::string& message,
                    const MetricsSnapshot& snap,
                    std::vector<HealthEvent>& out) {
  RuleState& state = states_[rule + "/" + subject];
  HealthEvent ev;
  ev.seq = snap.seq;
  ev.t_ns = snap.t_ns;
  ev.wall_ms = snap.wall_ms;
  ev.rule = rule;
  ev.subject = subject;
  ev.value = value;
  ev.threshold = threshold;
  if (breach) {
    state.oks = 0;
    if (!state.active && ++state.breaches >= options_.fire_after) {
      state.active = true;
      state.breaches = 0;
      ev.severity = severity;
      ev.message = message;
      out.push_back(std::move(ev));
    }
  } else {
    state.breaches = 0;
    if (state.active && ++state.oks >= options_.clear_after) {
      state.active = false;
      state.oks = 0;
      ev.severity = Severity::info;
      ev.cleared = true;
      ev.message = rule + " cleared for " + subject;
      out.push_back(std::move(ev));
    }
  }
}

void Watcher::attach_flight_record(const MetricsSnapshot& snap,
                                   std::vector<HealthEvent>& fired) {
  if (!options_.flight_record || !flight_) return;
  const bool worth_dumping = std::any_of(
      fired.begin(), fired.end(), [](const HealthEvent& ev) {
        return !ev.cleared && ev.severity != Severity::info;
      });
  if (!worth_dumping) return;

  // One dump per snapshot, shared by every event that fired on it: drain
  // the ring window, stitch the critical path, name the top blame.
  const TraceReport report = flight_();
  if (report.ranks.empty()) return;
  const prof::Profile profile = prof::Graph::build(report).profile();
  const std::vector<prof::ComponentBlame> blame = profile.components();
  std::string blame_text;
  if (!blame.empty()) {
    blame_text = blame.front().component + " (" +
                 std::to_string(static_cast<int>(blame.front().share * 100)) +
                 "% of critical path)";
  }
  std::string file;
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    dir_ready_ = true;
  }
  {
    std::ofstream dump(options_.flight_path(snap.seq), std::ios::trunc);
    if (dump) {
      dump << prof::annotate_chrome_json(report, profile);
      file = options_.flight_path(snap.seq);
    } else {
      MPH_DIAG_LOG(warn) << "mph_watch: cannot write flight record to '"
                         << options_.flight_path(snap.seq) << "'";
    }
  }
  for (HealthEvent& ev : fired) {
    if (ev.cleared || ev.severity == Severity::info) continue;
    ev.blame = blame_text;
    ev.flight_file = file;
  }
}

void Watcher::append_health_lines(const std::vector<HealthEvent>& events) {
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    dir_ready_ = true;
  }
  std::ofstream out(options_.health_path(), std::ios::app);
  if (!out) return;
  for (const HealthEvent& ev : events) out << ev.to_jsonl() << "\n";
}

std::vector<HealthEvent> Watcher::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Watcher::active_alerts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, state] : states_) {
    if (state.active) ++n;
  }
  return n;
}

std::string Watcher::alert_gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "# HELP mph_watch_alert 1 while the rule's alert is active for "
         "the subject.\n";
  out += "# TYPE mph_watch_alert gauge\n";
  for (const auto& [key, state] : states_) {
    const std::size_t slash = key.find('/');
    std::string rule = key.substr(0, slash);
    std::string subject =
        slash == std::string::npos ? std::string() : key.substr(slash + 1);
    out += "mph_watch_alert{rule=\"";
    append_json_escaped(out, rule);
    out += "\",subject=\"";
    append_json_escaped(out, subject);
    out += "\"} ";
    out += state.active ? "1\n" : "0\n";
  }
  out += "# HELP mph_watch_events_total Health events recorded this job.\n";
  out += "# TYPE mph_watch_events_total counter\n";
  out += "mph_watch_events_total " + std::to_string(events_.size()) + "\n";
  return out;
}

bool Watcher::consume_imbalance_alert() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool pending = imbalance_pending_;
  imbalance_pending_ = false;
  return pending;
}

}  // namespace minimpi::watch
