// error.hpp — error model of the minimpi substrate.
//
// minimpi follows the "errors are exceptions" C++ idiom rather than MPI's
// error-code returns: misuse (bad rank, bad tag, truncation) throws Error
// with a specific code; a job-wide abort (another rank failed) surfaces as
// AbortedError so blocked ranks unwind instead of deadlocking.
#pragma once

#include <stdexcept>
#include <string>

namespace minimpi {

enum class Errc {
  invalid_rank,      ///< destination/source outside the communicator
  invalid_tag,       ///< tag outside [0, kMaxUserTag] (or wildcard misuse)
  truncation,        ///< receive buffer smaller than the matched message
  invalid_comm,      ///< operation on a null/incompatible communicator
  invalid_argument,  ///< other precondition failure
  timeout,           ///< blocking operation exceeded the job's receive timeout
  aborted,           ///< job aborted (another rank raised)
  fault_injected,    ///< a FaultPlan kill rule fired on this rank
  deadlock,          ///< mpicheck found a wait-for cycle across ranks
  type_mismatch,     ///< mpicheck: send/recv element types disagree
  collective_mismatch,  ///< mpicheck: inconsistent collective invocation
  leak,              ///< mpicheck: rank finished with communication debt
  internal,          ///< substrate invariant violation (a bug in minimpi)
};

[[nodiscard]] constexpr const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::invalid_rank: return "invalid_rank";
    case Errc::invalid_tag: return "invalid_tag";
    case Errc::truncation: return "truncation";
    case Errc::invalid_comm: return "invalid_comm";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::timeout: return "timeout";
    case Errc::aborted: return "aborted";
    case Errc::fault_injected: return "fault_injected";
    case Errc::deadlock: return "deadlock";
    case Errc::type_mismatch: return "type_mismatch";
    case Errc::collective_mismatch: return "collective_mismatch";
    case Errc::leak: return "leak";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

/// Base exception of the substrate.
class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what)
      : std::runtime_error(std::string("minimpi [") + errc_name(code) +
                           "]: " + what),
        code_(code) {}

  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// Thrown out of any blocking operation once the job has been aborted.
class AbortedError : public Error {
 public:
  explicit AbortedError(const std::string& reason)
      : Error(Errc::aborted, reason) {}
};

}  // namespace minimpi
