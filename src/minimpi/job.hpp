// job.hpp — shared state of one minimpi job.
//
// A Job is the in-process analogue of one MPMD batch job: `world_size`
// ranks (threads) sharing one COMM_WORLD.  The Job owns every rank's
// mailbox, hands out fresh communicator context ids, and implements the
// failure protocols:
//
//   * job-wide abort — when any rank fails, all blocked ranks are woken and
//     unwind with AbortedError instead of deadlocking (the behaviour of
//     `mpirun` killing a job when one process dies);
//   * failure domains — an optional containment layer: ranks registered
//     into a domain (e.g. one ensemble member under MPH's MIME isolation)
//     abort *together* when one of them fails, while ranks outside the
//     domain keep running;
//   * structured abort — the reason carries the failing world rank, its
//     component label, and the operation that failed, not just free text.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/check.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/mailbox.hpp"
#include "src/minimpi/metrics.hpp"
#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/trace.hpp"
#include "src/minimpi/types.hpp"
#include "src/minimpi/watch/watch.hpp"

namespace minimpi {

/// Respawn policy for failure-domain members (the launcher's "member
/// replacement" recovery pillar).  Off by default: when disabled the
/// launcher never checks domains at rank exit and behaves exactly as
/// before — zero cost on the no-recovery path.
struct RespawnOptions {
  bool enabled = false;
  /// Maximum replacements per failure domain over the job's lifetime.
  int max_respawns = 1;
  /// Delay before the first respawn of a domain; subsequent respawns of
  /// the same domain back off by `backoff_factor`.
  std::chrono::milliseconds backoff{10};
  double backoff_factor = 2.0;
};

struct JobOptions {
  /// Upper bound for any single blocking receive/probe/wait.  Deadlocked
  /// applications fail with Errc::timeout instead of hanging the test
  /// suite.  time_point::max() semantics (wait forever) via zero.
  std::chrono::milliseconds recv_timeout{std::chrono::seconds(120)};

  /// Deterministic fault injection plan (empty = no injection).
  FaultPlan faults;

  /// mpicheck correctness checkers (all off by default).  Unioned with the
  /// MINIMPI_CHECK environment variable at job construction.
  CheckOptions check;

  /// mph_trace event tracing (off by default).  Unioned with the
  /// MINIMPI_TRACE environment variable at job construction; when off,
  /// Job::tracer() is null and every trace point costs one null check.
  TraceOptions trace;

  /// mph_mon live telemetry (off by default).  Unioned with the
  /// MINIMPI_MONITOR environment variable at job construction; when off,
  /// Job::metrics() is null and every metric point costs one null check.
  MonitorOptions monitor;

  /// mph_watch health rules over the live snapshots (off by default).
  /// Unioned with the MINIMPI_WATCH environment variable at job
  /// construction; enabling watch also enables metrics collection.  When
  /// off, Job::watcher() is null — the watcher never touches rank hot
  /// paths either way (it runs on the monitor-thread reader side).
  watch::WatchOptions watch;

  /// Seed of the job's deterministic random stream (fault-injection delay
  /// jitter and any library randomness).  0 = draw a fresh seed from the
  /// OS — which throws while schedule verification has armed the entropy
  /// ban, forcing all randomness through a replayable seed.
  std::uint64_t seed = 0;

  /// Scheduler every communication decision point yields to (null =
  /// pass-through, zero overhead).  The verify engine installs a
  /// VerifyScheduler here; shared_ptr because the engine also keeps a
  /// handle across the job's lifetime.
  std::shared_ptr<Scheduler> scheduler;

  /// Failed-member replacement (run_mpmd supervisor).  Ignored — with a
  /// diagnostic — when a verifying scheduler is installed: respawn times
  /// are wall-clock events outside the explored schedule space.
  RespawnOptions respawn;
};

// CommStats lives in metrics.hpp: the one job-wide counter struct shared
// by Job::stats(), JobReport, TraceReport, and MetricsSnapshot.

/// Structured description of why a rank (and hence its job or failure
/// domain) aborted.
struct AbortInfo {
  rank_t world_rank = -1;     ///< rank whose failure triggered the abort
  std::string component;      ///< rank label (component/executable name)
  std::string operation;      ///< what it was doing (kill-point, errc, ...)
  std::string detail;         ///< the underlying exception text

  /// "rank 3 (Ocean2) failed in before_send: ..." — the abort reason text.
  [[nodiscard]] std::string to_string() const;
};

/// Sum of every mailbox's teardown accounting.
struct JobDrain {
  std::size_t envelopes = 0;
  std::size_t posted_recvs = 0;
};

class Job {
 public:
  explicit Job(int world_size, JobOptions options = {});
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  [[nodiscard]] const JobOptions& options() const noexcept { return options_; }

  /// Mailbox of a world rank.
  [[nodiscard]] Mailbox& mailbox(rank_t world_rank);

  /// The job's fault injector, or null when no plan was configured.
  [[nodiscard]] FaultInjector* faults() const noexcept { return faults_.get(); }

  /// The job's mpicheck registry, or null when every checker is off.
  [[nodiscard]] Checker* checker() const noexcept { return checker_.get(); }

  /// The job's event tracer, or null when tracing is off — every
  /// instrumentation point branches on this pointer and nothing else.
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_.get(); }

  /// The job's metrics registry, or null when monitoring is off — the same
  /// single-null-check discipline as tracer().
  [[nodiscard]] MetricsRegistry* metrics() const noexcept {
    return metrics_.get();
  }

  /// The job's health watcher, or null when watching is off.  Evaluated
  /// by the monitor thread at every publish; steering code and tests may
  /// also feed it snapshots directly (observe() is thread safe).
  [[nodiscard]] watch::Watcher* watcher() const noexcept {
    return watcher_.get();
  }

  /// The job's scheduler, or null (pass-through).
  [[nodiscard]] Scheduler* scheduler() const noexcept {
    return options_.scheduler.get();
  }

  /// The resolved job seed (JobOptions::seed, or the fresh OS seed drawn
  /// when that was 0).  All job-owned randomness derives from it.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Allocate a fresh communicator context id (thread safe).  Exactly one
  /// rank of a communicator allocates — `allocator` is its world rank —
  /// and the id is then distributed to the other members collectively.
  /// Under schedule verification each rank draws from its own disjoint id
  /// space, so context ids depend only on the allocating rank's program
  /// order, never on cross-rank allocation races: traces stay byte-
  /// identical across schedules and replays.
  [[nodiscard]] context_t allocate_context(rank_t allocator) noexcept;

  // --- job-wide abort ------------------------------------------------------

  /// Abort the job: record `reason` (first caller wins) and wake every
  /// blocked rank.  Idempotent.
  void abort(const std::string& reason);

  /// Structured abort: like abort(reason) but preserving the failing rank,
  /// component label, and operation for abort_info().
  void abort(AbortInfo info);

  [[nodiscard]] bool aborted() const noexcept {
    return abort_flag_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& abort_reason() const noexcept {
    return abort_reason_;
  }

  /// Structured root cause, when the abort came through abort(AbortInfo).
  /// Safe to call from surviving ranks while the job is still running
  /// (e.g. Mph::failure_of), hence the copy under the abort lock.
  [[nodiscard]] std::optional<AbortInfo> abort_info() const {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    return abort_info_;
  }

  // --- per-rank annotations ------------------------------------------------

  /// Label a rank with its component/executable name for failure reports.
  /// Each rank writes only its own slot (launcher at start, MPH after the
  /// handshake); mutex-guarded (returning a copy) because the mpicheck
  /// watcher thread reads labels while ranks are still relabelling.
  void set_rank_label(rank_t world_rank, std::string label);
  [[nodiscard]] std::string rank_label(rank_t world_rank) const;

  /// Liveness flags consulted by MPH_ping: set when a rank's entry point
  /// throws (root cause or domain collateral).
  void mark_rank_failed(rank_t world_rank);
  [[nodiscard]] bool rank_failed(rank_t world_rank) const;
  [[nodiscard]] bool any_rank_failed(rank_t low, rank_t high) const;

  // --- failure domains (containment) ---------------------------------------

  /// Register `world_rank` into failure domain `domain_id` (any
  /// application-chosen id; MPH uses the component id of an ensemble
  /// member).  A failing domain member aborts only the domain: its ranks
  /// unwind with AbortedError, everyone else keeps running.  Each rank
  /// registers itself, before any member can fail (MPH: during the
  /// handshake).  Idempotent per rank: a respawned member re-joining its
  /// healed domain is recorded once.
  void join_domain(rank_t world_rank, int domain_id, const std::string& label);

  /// Domain of a rank, or -1 when unregistered.
  [[nodiscard]] int domain_of(rank_t world_rank) const;

  /// World ranks registered in a domain (empty for an unknown id).
  [[nodiscard]] std::vector<rank_t> domain_ranks(int domain_id) const;

  /// Label a domain was created with ("" for an unknown id).
  [[nodiscard]] std::string domain_label(int domain_id) const;

  /// Un-abort a domain so replacement ranks can run in it: clears the
  /// domain flag/reason/info, clears the member ranks' failure marks, and
  /// drains their mailboxes (traffic addressed to the dead incarnation).
  /// Call only after every member rank's thread has exited — the launcher
  /// supervisor does, between death and respawn.  No-op for an unknown or
  /// un-aborted domain.
  void heal_domain(int domain_id);

  /// Abort one domain: record the structured reason (first caller wins) and
  /// wake only that domain's blocked ranks.  Idempotent.
  void abort_domain(int domain_id, const AbortInfo& info);

  [[nodiscard]] bool domain_aborted(int domain_id) const;

  /// Structured failure of an aborted domain (empty otherwise).
  [[nodiscard]] std::optional<AbortInfo> domain_abort_info(int domain_id) const;

  // --- shared blackboard ----------------------------------------------------
  // A small job-lifetime key→value store for facts that must outlive the
  // ranks that learned them.  The MPH handshake publishes its resolved
  // layout here so a respawned member can rebuild its directory without a
  // world collective (the survivors are mid-run and cannot participate).
  // Last write wins; writers publishing the same key must agree on the
  // value.

  void put_shared(const std::string& key, std::string value);
  [[nodiscard]] std::optional<std::string> get_shared(
      const std::string& key) const;

  // --- deadlines / control -------------------------------------------------

  /// Deadline for a blocking operation starting now.
  [[nodiscard]] Deadline deadline() const {
    if (options_.recv_timeout.count() == 0) return Deadline::max();
    return std::chrono::steady_clock::now() + options_.recv_timeout;
  }

  /// Raw world-context send used by control protocols (e.g. distributing a
  /// fresh context id during MPH_comm_join) that run outside any
  /// user-visible communicator collective.
  void control_send(rank_t src_world, rank_t dest_world, tag_t control_tag,
                    std::span<const std::byte> bytes);

  /// Record one delivered message (called by every send path).
  void count_message(std::size_t payload_bytes) noexcept {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  /// Snapshot of the job's communication counters.
  [[nodiscard]] CommStats stats() const;

  /// Drain the trace rings into a report (empty ranks when tracing is
  /// off).  Tracks default to "label:world_rank" until someone (the MPH
  /// handshake) names them.  Normally called once, after every rank thread
  /// joined; safe — but approximate — while ranks are still recording.
  [[nodiscard]] TraceReport trace_report() const;

  /// Aggregate the metrics registry into one snapshot (empty ranks when
  /// monitoring is off): registry slots plus the liveness flags and
  /// component labels only the Job knows.  The monitor thread calls this
  /// every interval; run_mpmd calls it once more, after every rank thread
  /// joined, for the exact JobReport::metrics.
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;

  /// Park the monitor thread (idempotent).  Called by run_mpmd before the
  /// final snapshot so the published files end on a quiescent state, and
  /// by ~Job before the mailboxes the snapshots read are torn down.
  void stop_monitor();

  /// Discard every mailbox's leftover envelopes and posted receives,
  /// summing what leaked — called after all rank threads joined.
  [[nodiscard]] JobDrain drain_all();

 private:
  struct FailureDomain {
    std::string label;
    std::vector<rank_t> ranks;
    mph::atomic<bool> flag{false};
    std::string reason;
    std::optional<AbortInfo> info;
  };

  int world_size_;
  // Declared before the mailboxes: options_ holds the scheduler and every
  // Mailbox a raw Scheduler*, so it must outlive them (members destroy in
  // reverse order).
  JobOptions options_;
  std::uint64_t seed_ = 0;  ///< resolved job seed (see seed())
  bool verify_ = false;     ///< scheduler present and verifying
  std::unique_ptr<FaultInjector> faults_;
  // Likewise declared before the mailboxes: every Mailbox holds a raw
  // Checker*, so the checker must outlive them.
  std::unique_ptr<Checker> checker_;
  // Likewise: every Mailbox (and the fault injector) holds a raw Tracer*.
  std::unique_ptr<Tracer> tracer_;
  // Likewise: every Mailbox (and the fault injector) holds a raw
  // MetricsRegistry*.
  std::unique_ptr<MetricsRegistry> metrics_;
  mph::atomic<context_t> next_context_{kWorldContext + 1};
  /// Verify mode: per-rank context counters (disjoint id spaces).
  std::unique_ptr<mph::atomic<context_t>[]> rank_next_context_;
  mph::atomic<std::uint64_t> contexts_allocated_{0};
  mph::atomic<std::uint64_t> messages_{0};
  mph::atomic<std::uint64_t> payload_bytes_{0};

  // The abort flag/reason are referenced by every Mailbox.  The reason
  // string is written exactly once, before the flag flips to true (release
  // store in abort()), and only read after observing the flag (acquire
  // loads) — the message-passing protocol mph_racer's mailbox_abort_flag
  // litmus checks (DESIGN.md §14).
  mph::atomic<bool> abort_flag_{false};
  std::string abort_reason_;
  std::optional<AbortInfo> abort_info_;
  mutable std::mutex abort_mutex_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Per-rank annotations (slots written by the owning rank's thread; the
  // mutex serialises those writes against checker-thread reads).
  mutable std::mutex labels_mutex_;
  std::vector<std::string> rank_labels_;
  std::unique_ptr<mph::atomic<bool>[]> rank_failed_;

  // Failure domains.  The map never erases, so FailureDomain addresses are
  // stable once created (mailboxes keep pointers into them).
  mutable std::mutex domains_mutex_;
  std::map<int, std::unique_ptr<FailureDomain>> domains_;
  std::vector<int> rank_domain_;  ///< guarded by domains_mutex_

  // Shared blackboard (see put_shared/get_shared).
  mutable std::mutex shared_mutex_;
  std::map<std::string, std::string> shared_;

  // The watcher is fed by the monitor thread (and by steering code), so it
  // is declared after everything a snapshot reads and before the monitor
  // that drives it.
  std::unique_ptr<watch::Watcher> watcher_;

  // Declared LAST: the monitor thread calls metrics_snapshot(), which
  // reads the mailboxes and liveness flags above, so it must be destroyed
  // (joined) before any of them.
  std::unique_ptr<Monitor> monitor_;
};

}  // namespace minimpi
