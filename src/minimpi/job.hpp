// job.hpp — shared state of one minimpi job.
//
// A Job is the in-process analogue of one MPMD batch job: `world_size`
// ranks (threads) sharing one COMM_WORLD.  The Job owns every rank's
// mailbox, hands out fresh communicator context ids, and implements the
// job-wide abort protocol: when any rank fails, all blocked ranks are woken
// and unwind with AbortedError instead of deadlocking — the behaviour of
// `mpirun` killing a job when one process dies.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/minimpi/mailbox.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

struct JobOptions {
  /// Upper bound for any single blocking receive/probe/wait.  Deadlocked
  /// applications fail with Errc::timeout instead of hanging the test
  /// suite.  time_point::max() semantics (wait forever) via zero.
  std::chrono::milliseconds recv_timeout{std::chrono::seconds(120)};
};

/// Aggregate communication counters of one job (monotone; snapshot with
/// Job::stats()).  Useful for asserting communication complexity in tests
/// and reporting message volume from benchmarks.
struct CommStats {
  std::uint64_t messages = 0;            ///< envelopes delivered
  std::uint64_t payload_bytes = 0;       ///< payload volume delivered
  std::uint64_t contexts_allocated = 0;  ///< communicators created job-wide
};

class Job {
 public:
  explicit Job(int world_size, JobOptions options = {});

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  [[nodiscard]] const JobOptions& options() const noexcept { return options_; }

  /// Mailbox of a world rank.
  [[nodiscard]] Mailbox& mailbox(rank_t world_rank);

  /// Allocate a fresh communicator context id (thread safe).  Exactly one
  /// rank of a communicator allocates; the id is then distributed to the
  /// other members collectively.
  [[nodiscard]] context_t allocate_context() noexcept {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Abort the job: record `reason` (first caller wins) and wake every
  /// blocked rank.  Idempotent.
  void abort(const std::string& reason);

  [[nodiscard]] bool aborted() const noexcept { return abort_flag_; }
  [[nodiscard]] const std::string& abort_reason() const noexcept {
    return abort_reason_;
  }

  /// Deadline for a blocking operation starting now.
  [[nodiscard]] Deadline deadline() const {
    if (options_.recv_timeout.count() == 0) return Deadline::max();
    return std::chrono::steady_clock::now() + options_.recv_timeout;
  }

  /// Raw world-context send used by control protocols (e.g. distributing a
  /// fresh context id during MPH_comm_join) that run outside any
  /// user-visible communicator collective.
  void control_send(rank_t src_world, rank_t dest_world, tag_t control_tag,
                    std::span<const std::byte> bytes);

  /// Record one delivered message (called by every send path).
  void count_message(std::size_t payload_bytes) noexcept {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  /// Snapshot of the job's communication counters.
  [[nodiscard]] CommStats stats() const noexcept {
    CommStats s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.payload_bytes = payload_bytes_.load(std::memory_order_relaxed);
    s.contexts_allocated =
        next_context_.load(std::memory_order_relaxed) - (kWorldContext + 1);
    return s;
  }

 private:
  int world_size_;
  JobOptions options_;
  std::atomic<context_t> next_context_{kWorldContext + 1};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};

  // The abort flag/reason are referenced by every Mailbox.  The reason
  // string is written exactly once, before the flag flips to true, and
  // only read after observing the flag.
  std::atomic<bool> abort_flag_{false};
  std::string abort_reason_;
  std::mutex abort_mutex_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace minimpi
