// profile.hpp — mph_prof: cross-rank causal critical-path analysis.
//
// Turns a TraceReport into bottleneck blame.  The per-rank timelines are
// stitched into a job-wide happens-before DAG: each rank's own-thread ops
// (send instants, recv/wait spans) in ring order give the program-order
// chain, per-message flow ids give the cross-rank send→recv-match edges
// (collectives and handshake barriers are built over traced p2p, so their
// waves come along for free), and the launcher's rank_main phase spans
// anchor every rank's launch and join on the shared job clock.  From the
// DAG we extract:
//
//  * the critical path from launch to the last join, as a contiguous chain
//    of segments each attributed to one rank and one kind (compute,
//    recv-wait, collective-wait, handshake);
//  * per-rank slack ("how much later could this rank finish without moving
//    the join") and per-component blame percentages;
//  * what-if answers ("if component X were 20% faster the job finishes Z
//    sooner") by replaying the DAG schedule with scaled compute segments.
//
// Soundness under ring overflow: a receive whose matching send event was
// dropped (or predates flow stamping) is kept on the path with its
// *observed* completion time and counted in Profile::unresolved_flows —
// the result is a partial path with an explicit warning in the report,
// never a crash or a silently wrong chain.  See DESIGN.md §16.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/trace.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi::prof {

// ---------------------------------------------------------------------------
// Profile
// ---------------------------------------------------------------------------

/// What a critical-path segment's time was spent on.
enum class SegmentKind : std::uint8_t {
  compute,          ///< the rank's own work between traced waits
  recv_wait,        ///< waiting for a point-to-point message
  collective_wait,  ///< waiting inside a collective
  handshake,        ///< inside an MPH phase span (handshake, registry, ...)
};
inline constexpr std::size_t kSegmentKinds = 4;

[[nodiscard]] const char* segment_kind_name(SegmentKind kind) noexcept;

/// One hop of the critical path.  Segments are contiguous in time: the
/// chain starts at the origin rank's launch and ends at the last join.
struct PathSegment {
  rank_t world_rank = -1;
  std::string track;  ///< "component[instance]:rank" timeline name
  SegmentKind kind = SegmentKind::compute;
  std::uint64_t t_start_ns = 0;
  std::uint64_t t_end_ns = 0;
  /// For a wait bound by a message: the flow id and where the path came
  /// from (the sender rank and its send timestamp).  from_rank == -1 when
  /// the edge was unresolved (dropped sender event) — the wait is then
  /// charged to this rank from its own wait start.
  std::uint64_t flow = 0;
  rank_t from_rank = -1;
  std::uint64_t from_t_ns = 0;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return t_end_ns - t_start_ns;
  }
};

/// Per-rank summary: when it finished, how much slack it had, and how much
/// of the critical path ran on it.
struct RankProfile {
  rank_t world_rank = -1;
  std::string track;
  std::uint64_t finish_ns = 0;        ///< this rank's join time
  std::uint64_t slack_ns = 0;         ///< job end − finish
  std::uint64_t path_compute_ns = 0;  ///< critical-path compute on this rank
  std::uint64_t path_wait_ns = 0;     ///< critical-path waits on this rank
  std::uint64_t dropped = 0;          ///< ring events lost on this rank

  [[nodiscard]] std::uint64_t path_ns() const noexcept {
    return path_compute_ns + path_wait_ns;
  }
};

/// Per-component blame: the share of the critical path spent on (any rank
/// of) this component.
struct ComponentBlame {
  std::string component;
  std::uint64_t compute_ns = 0;
  std::uint64_t wait_ns = 0;
  double share = 0.0;  ///< (compute+wait) / critical-path total, in [0,1]

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return compute_ns + wait_ns;
  }
};

/// One what-if answer: job finish time with `target` sped up by
/// `speedup_fraction` (0.2 = that target's compute takes 20% less time).
struct WhatIf {
  std::string target;  ///< component name or "rank N"
  double speedup_fraction = 0.0;
  std::uint64_t baseline_end_ns = 0;
  std::uint64_t new_end_ns = 0;
  [[nodiscard]] std::uint64_t saved_ns() const noexcept {
    return baseline_end_ns > new_end_ns ? baseline_end_ns - new_end_ns : 0;
  }
};

/// The analysis result.
struct Profile {
  std::uint64_t job_start_ns = 0;  ///< earliest rank launch on the job clock
  std::uint64_t job_end_ns = 0;    ///< last rank join
  std::vector<PathSegment> path;   ///< chronological, contiguous
  std::vector<RankProfile> ranks;  ///< ascending world rank
  std::uint64_t path_total_ns = 0;           ///< sum of segment durations
  std::uint64_t kind_ns[kSegmentKinds] = {}; ///< path time per SegmentKind
  std::uint64_t unresolved_flows = 0;  ///< receives with no matching send event
  std::uint64_t dropped_events = 0;    ///< ring drops across all ranks

  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return job_end_ns > job_start_ns ? job_end_ns - job_start_ns : 0;
  }
  /// Blame aggregated per component, descending share (name breaks ties).
  [[nodiscard]] std::vector<ComponentBlame> components() const;
};

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

/// The stitched happens-before DAG.  Build once, then extract the baseline
/// profile and replay what-if schedules against it.
class Graph {
 public:
  /// Stitch a drained TraceReport (never throws on partial data: missing
  /// anchors fall back to first/last event, unresolved flows are counted).
  [[nodiscard]] static Graph build(const TraceReport& report);

  /// Baseline critical path + blame.  Deterministic: ties (equal finish
  /// times, equal blame) break toward the lower rank / lexicographic name.
  [[nodiscard]] Profile profile() const;

  /// Replay the DAG schedule with per-world-rank compute scale factors
  /// (scale[r] = 0.8 means rank r's compute gaps take 80% of their traced
  /// time; ranks beyond the span keep scale 1) and return the new job end.
  [[nodiscard]] std::uint64_t finish_with_scale(
      std::span<const double> scale) const;

  /// Timeline name of a world rank ("" when the rank has no trace).
  [[nodiscard]] std::string_view track_of(rank_t world_rank) const;

  [[nodiscard]] rank_t max_world_rank() const noexcept {
    return max_world_rank_;
  }

  // The node types are public so file-scope helpers in profile.cpp can
  // take them; the containers below stay private.

  /// One node of a rank's program-order chain: a send instant or a
  /// receive/wait dependency span.
  struct Op {
    bool is_send = false;
    std::uint64_t t_start = 0;  ///< sends: == t_end
    std::uint64_t t_end = 0;    ///< the op's traced completion
    std::uint64_t flow = 0;
    SegmentKind wait_kind = SegmentKind::recv_wait;  ///< deps only
    // Resolved cross-rank edge (deps only).
    bool resolved = false;
    bool bound = false;  ///< sender issued after the wait began
    std::uint32_t send_rank_index = 0;
    std::uint32_t send_op_index = 0;
    std::uint64_t t_send = 0;
  };

  struct Window {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  struct RankChain {
    rank_t world_rank = -1;
    std::string track;
    std::uint64_t t_begin = 0;  ///< rank_main start (or first event)
    std::uint64_t t_end = 0;    ///< rank_main end (or last event)
    std::vector<Op> ops;        ///< ring order == program order
    std::vector<Window> phase_windows;  ///< handshake & other MPH phases
    std::vector<Window> collective_windows;
    std::uint64_t dropped = 0;
  };

  /// Global processing order for the schedule replay: ops sorted by traced
  /// completion time (sends before deps on ties, then rank, then index).
  struct OrderedOp {
    std::uint64_t completion = 0;
    std::uint32_t rank_index = 0;
    std::uint32_t op_index = 0;
    bool is_send = false;
  };

 private:
  friend struct GraphBuilder;

  std::vector<RankChain> chains_;       ///< ascending world rank
  std::vector<OrderedOp> order_;
  rank_t max_world_rank_ = -1;
  std::uint64_t unresolved_flows_ = 0;
  std::uint64_t dropped_events_ = 0;
};

// ---------------------------------------------------------------------------
// What-if + reports
// ---------------------------------------------------------------------------

/// "If every rank of `component` were `speedup_fraction` faster."
[[nodiscard]] WhatIf what_if_component(const Graph& graph,
                                       const Profile& profile,
                                       std::string_view component,
                                       double speedup_fraction);

/// "If world rank `rank` were `speedup_fraction` faster."
[[nodiscard]] WhatIf what_if_rank(const Graph& graph, const Profile& profile,
                                  rank_t rank, double speedup_fraction);

/// Human-readable bottleneck report (what `mph_prof report` prints):
/// critical-path total vs wall, blame by kind and by component, the top-N
/// longest segments, per-rank slack, any what-ifs, and — when events were
/// dropped — the explicit "N flow edges unresolved (ring dropped M
/// events)" partial-path warning.
[[nodiscard]] std::string render_report(const Profile& profile,
                                        std::span<const WhatIf> what_ifs = {},
                                        std::size_t top_segments = 5);

/// Just the top-N critical-path segments table (for `mph_inspect trace
/// --critical`).
[[nodiscard]] std::string render_top_segments(const Profile& profile,
                                              std::size_t top_segments = 5);

/// The trace's Chrome JSON with the critical path overlaid: every path
/// segment becomes a cat:"critical" span on its rank's track and every
/// resolved path message edge a ph:"s"/"f" flow-arrow pair, so Perfetto
/// highlights exactly the chain that bounded the job.
[[nodiscard]] std::string annotate_chrome_json(const TraceReport& report,
                                               const Profile& profile);

}  // namespace minimpi::prof
