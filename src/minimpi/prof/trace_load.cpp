#include "src/minimpi/prof/trace_load.hpp"

#include <cmath>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/minimpi/error.hpp"
#include "src/util/json.hpp"

namespace minimpi::prof {

namespace {

using mph::util::JsonValue;

std::uint64_t arg_u64(const JsonValue& event, const char* key,
                      std::uint64_t fallback) {
  const JsonValue* args = event.find("args");
  if (args == nullptr) return fallback;
  const JsonValue* value = args->find(key);
  if (value == nullptr) return fallback;
  return static_cast<std::uint64_t>(value->as_int());
}

std::int64_t arg_i64(const JsonValue& event, const char* key,
                     std::int64_t fallback) {
  const JsonValue* args = event.find("args");
  if (args == nullptr) return fallback;
  const JsonValue* value = args->find(key);
  if (value == nullptr) return fallback;
  return value->as_int();
}

/// Microsecond decimal ("1234.567") back to integral nanoseconds.  The
/// export writes exactly three fractional digits, so the double round-trip
/// is exact for any realistic job duration.
std::uint64_t us_to_ns(const JsonValue& value) {
  const double us = value.as_number();
  return us <= 0.0 ? 0
                   : static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

TraceOp op_of(std::string_view cat, std::string_view name, bool span) {
  if (cat == "p2p") {
    if (!span) {
      if (name == "post_recv") return TraceOp::post_recv;
      if (name == "recv_match") return TraceOp::recv;
      return TraceOp::send;  // "send" / "control_send"
    }
    return TraceOp::recv;  // "recv" / "wait" spans
  }
  if (cat == "blocked") return TraceOp::blocked;
  if (cat == "collective") return TraceOp::collective;
  if (cat == "comm") return TraceOp::comm_create;
  if (cat == "fault") return TraceOp::fault;
  return TraceOp::phase;  // "phase" and future categories
}

}  // namespace

LoadedTrace load_chrome_trace(std::string_view json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) {
    throw Error(Errc::invalid_argument,
                "mph_prof: not a trace export — the document has no "
                "'traceEvents' array");
  }

  // Interning pool: deque never relocates, so const char* stay valid.
  auto pool = std::make_shared<std::deque<std::string>>();
  std::map<std::string, const char*, std::less<>> interned;
  const auto intern = [&](const std::string& name) {
    const auto it = interned.find(name);
    if (it != interned.end()) return it->second;
    pool->push_back(name);
    const char* ptr = pool->back().c_str();
    interned.emplace(name, ptr);
    return ptr;
  };

  std::map<int, RankTrace> ranks;
  const auto rank_of = [&](int tid) -> RankTrace& {
    RankTrace& r = ranks[tid];
    r.world_rank = tid;
    return r;
  };

  for (const JsonValue& event : events->items()) {
    const std::string& ph = event.at("ph").as_string();
    const int tid = static_cast<int>(event.at("tid").as_int());
    if (ph == "M") {
      if (event.at("name").as_string() == "thread_name") {
        rank_of(tid).track = event.at("args").at("name").as_string();
      }
      continue;
    }
    const bool span = ph == "X";
    if (!span && ph != "i") continue;  // overlay / flow events etc.
    const JsonValue* cat = event.find("cat");
    const std::string& cat_name =
        cat != nullptr ? cat->as_string() : std::string{};
    if (cat_name == "critical") continue;  // our own overlay, re-loaded
    TraceEvent e;
    e.t_start_ns = us_to_ns(event.at("ts"));
    e.t_end_ns = e.t_start_ns;
    if (span) {
      const JsonValue* dur = event.find("dur");
      if (dur != nullptr) e.t_end_ns += us_to_ns(*dur);
    }
    e.span = span;
    const std::string& name = event.at("name").as_string();
    e.op = op_of(cat_name, name, span);
    e.name = intern(name);
    e.peer = static_cast<rank_t>(arg_i64(event, "peer", any_source));
    e.context = static_cast<context_t>(
        arg_u64(event, "context", kWorldContext));
    e.tag = static_cast<tag_t>(arg_i64(event, "tag", any_tag));
    e.bytes = arg_u64(event, "bytes", 0);
    e.flow = arg_u64(event, "flow", 0);
    rank_of(tid).events.push_back(e);
  }

  LoadedTrace out;
  out.names = std::shared_ptr<const void>(pool, pool.get());

  // The "mph" rollup: drop counts (overflow soundness), backlog high
  // water, counters, and the comm stats the report embeds.
  const JsonValue* mph = doc.find("mph");
  if (mph != nullptr) {
    const JsonValue* wildcard = mph->find("wildcardRecvs");
    if (wildcard != nullptr) {
      out.report.comm.wildcard_recvs =
          static_cast<std::uint64_t>(wildcard->as_int());
    }
    const JsonValue* contexts = mph->find("contexts");
    if (contexts != nullptr && contexts->type() == JsonValue::Type::array) {
      for (const JsonValue& c : contexts->items()) {
        out.report.comm.messages_by_context.emplace_back(
            static_cast<context_t>(c.at("context").as_int()),
            static_cast<std::uint64_t>(c.at("messages").as_int()));
      }
    }
    const JsonValue* rollup_ranks = mph->find("ranks");
    if (rollup_ranks != nullptr &&
        rollup_ranks->type() == JsonValue::Type::array) {
      for (const JsonValue& rr : rollup_ranks->items()) {
        const JsonValue* rank = rr.find("rank");
        if (rank == nullptr) continue;
        RankTrace& r = rank_of(static_cast<int>(rank->as_int()));
        const JsonValue* dropped = rr.find("dropped");
        if (dropped != nullptr) {
          r.dropped = static_cast<std::uint64_t>(dropped->as_int());
        }
        const JsonValue* qhw = rr.find("queueHighWater");
        if (qhw != nullptr) {
          r.queue_high_water = static_cast<std::uint64_t>(qhw->as_int());
        }
        const JsonValue* counters = rr.find("counters");
        if (counters != nullptr &&
            counters->type() == JsonValue::Type::array) {
          for (const JsonValue& c : counters->items()) {
            r.counters.emplace_back(
                c.at("name").as_string(),
                static_cast<std::uint64_t>(c.at("value").as_int()));
          }
        }
      }
    }
  }

  out.report.ranks.reserve(ranks.size());
  for (auto& [tid, r] : ranks) out.report.ranks.push_back(std::move(r));
  return out;
}

LoadedTrace load_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(Errc::invalid_argument,
                "mph_prof: cannot read trace file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return load_chrome_trace(text.str());
}

}  // namespace minimpi::prof
