// trace_load.hpp — reconstruct a TraceReport from its Chrome-JSON export.
//
// mph_prof works post mortem: a job writes TraceReport::to_chrome_json to
// disk, and the profiler loads it back here.  The loader understands
// exactly the schema DESIGN.md §11 pins (thread_name metadata for tracks,
// ph:"X" spans / ph:"i" instants with cat + args, the "mph" rollup for
// per-rank drop counts) and ignores unknown keys, per the additive-only
// contract.  Events whose fields are missing default rather than throw —
// a trace from an older build simply loads with flow == 0 everywhere and
// the profiler reports the unresolved edges.
//
// TraceEvent::name points to static storage in live traces; a loaded
// report's names live in an interning pool carried alongside, so keep the
// LoadedTrace alive as long as the report (or anything derived from its
// events) is used.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "src/minimpi/trace.hpp"

namespace minimpi::prof {

struct LoadedTrace {
  TraceReport report;
  /// Keep-alive for the interned event-name strings the report points at.
  std::shared_ptr<const void> names;
};

/// Parse a Chrome trace-event document produced by to_chrome_json.
/// Throws minimpi::Error when the document is not a trace export and
/// std::runtime_error (from the JSON parser) when it is not JSON at all.
[[nodiscard]] LoadedTrace load_chrome_trace(std::string_view json_text);

/// load_chrome_trace over a file's contents; throws minimpi::Error when
/// the file cannot be read.
[[nodiscard]] LoadedTrace load_chrome_trace_file(const std::string& path);

}  // namespace minimpi::prof
