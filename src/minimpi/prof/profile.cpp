#include "src/minimpi/prof/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace minimpi::prof {

namespace {

[[nodiscard]] bool inside_any(const std::vector<Graph::Window>&, std::uint64_t);

}  // namespace

const char* segment_kind_name(SegmentKind kind) noexcept {
  switch (kind) {
    case SegmentKind::compute: return "compute";
    case SegmentKind::recv_wait: return "recv-wait";
    case SegmentKind::collective_wait: return "collective-wait";
    case SegmentKind::handshake: return "handshake";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Graph build
// ---------------------------------------------------------------------------

namespace {

/// Sort + merge overlapping windows so containment checks and compute-span
/// splitting see disjoint intervals (MPH phases nest: handshake contains
/// signature_allgather etc.).
std::vector<Graph::Window> merged(std::vector<Graph::Window> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const Graph::Window& a, const Graph::Window& b) {
              return a.begin < b.begin;
            });
  std::vector<Graph::Window> out;
  for (const Graph::Window& w : windows) {
    if (!out.empty() && w.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, w.end);
    } else {
      out.push_back(w);
    }
  }
  return out;
}

}  // namespace

// GraphBuilder exists only to reach Graph's private types from file scope.
struct GraphBuilder {
  static Graph run(const TraceReport& report) {
    Graph g;
    g.chains_.reserve(report.ranks.size());
    for (const RankTrace& r : report.ranks) {
      Graph::RankChain rc;
      rc.world_rank = r.world_rank;
      rc.track = r.track;
      rc.dropped = r.dropped;
      g.dropped_events_ += r.dropped;
      g.max_world_rank_ = std::max(g.max_world_rank_, r.world_rank);

      // Pass 1: anchors and attribution windows.  rank_main is recorded at
      // rank exit, so it survives overflow in practice; without one the
      // first/last event stand in (a partial chain, counted via dropped).
      bool have_anchor = false;
      std::uint64_t first_event = ~std::uint64_t{0};
      std::uint64_t last_event = 0;
      for (const TraceEvent& e : r.events) {
        first_event = std::min(first_event, e.t_start_ns);
        last_event = std::max(last_event, e.t_end_ns);
        if (e.op != TraceOp::phase || !e.span) continue;
        if (std::string_view(e.name) == "rank_main" ||
            e.tag == kPhaseRankMain) {
          if (!have_anchor) {
            rc.t_begin = e.t_start_ns;
            rc.t_end = e.t_end_ns;
            have_anchor = true;
          } else {  // respawned rank: one anchor per incarnation
            rc.t_begin = std::min(rc.t_begin, e.t_start_ns);
            rc.t_end = std::max(rc.t_end, e.t_end_ns);
          }
        } else {
          rc.phase_windows.push_back({e.t_start_ns, e.t_end_ns});
        }
      }
      for (const TraceEvent& e : r.events) {
        if (e.op == TraceOp::collective && e.span) {
          rc.collective_windows.push_back({e.t_start_ns, e.t_end_ns});
        }
      }
      if (!have_anchor) {
        rc.t_begin = r.events.empty() ? 0 : first_event;
        rc.t_end = r.events.empty() ? 0 : last_event;
      }
      rc.phase_windows = merged(std::move(rc.phase_windows));
      rc.collective_windows = merged(std::move(rc.collective_windows));

      // Pass 2: the program-order op chain.  Ring claim order IS program
      // order for a rank's own-thread records; foreign records on this
      // ring (recv_match instants from sender threads) are not chain ops.
      for (const TraceEvent& e : r.events) {
        if (e.op == TraceOp::send && !e.span) {
          Graph::Op op;
          op.is_send = true;
          op.t_start = e.t_start_ns;
          op.t_end = e.t_start_ns;
          op.flow = e.flow;
          rc.ops.push_back(op);
        } else if (e.op == TraceOp::recv && e.span) {
          const std::string_view name(e.name);
          if (name != "recv" && name != "wait") continue;
          Graph::Op op;
          op.t_start = e.t_start_ns;
          op.t_end = e.t_end_ns;
          op.flow = e.flow;
          if (inside_any(rc.phase_windows, e.t_start_ns)) {
            op.wait_kind = SegmentKind::handshake;
          } else if (inside_any(rc.collective_windows, e.t_start_ns)) {
            op.wait_kind = SegmentKind::collective_wait;
          } else {
            op.wait_kind = SegmentKind::recv_wait;
          }
          rc.ops.push_back(op);
        }
      }
      g.chains_.push_back(std::move(rc));
    }
    std::sort(g.chains_.begin(), g.chains_.end(),
              [](const Graph::RankChain& a, const Graph::RankChain& b) {
                return a.world_rank < b.world_rank;
              });

    // Stitch: flow id → producing send op.
    std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> senders;
    for (std::uint32_t ri = 0; ri < g.chains_.size(); ++ri) {
      const auto& ops = g.chains_[ri].ops;
      for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (ops[oi].is_send && ops[oi].flow != 0) {
          senders.emplace(ops[oi].flow, std::make_pair(ri, oi));
        }
      }
    }
    for (Graph::RankChain& rc : g.chains_) {
      for (Graph::Op& op : rc.ops) {
        if (op.is_send) continue;
        const auto it =
            op.flow != 0 ? senders.find(op.flow) : senders.end();
        if (it == senders.end()) {
          // Dropped (or pre-flow) sender event: the wait stays on the path
          // with its observed completion, charged to the receiver.
          ++g.unresolved_flows_;
          op.bound = true;
          continue;
        }
        op.resolved = true;
        op.send_rank_index = it->second.first;
        op.send_op_index = it->second.second;
        op.t_send = g.chains_[it->second.first]
                        .ops[it->second.second]
                        .t_start;
        // The edge binds the path only when the sender issued after this
        // wait began; an earlier send means the message was already in
        // flight and the wait span is just matching overhead.
        op.bound = op.t_send >= op.t_start;
      }
    }

    // Global replay order: traced completion time, sends before the deps
    // they complete on ties, per-rank program order preserved.
    for (std::uint32_t ri = 0; ri < g.chains_.size(); ++ri) {
      const auto& ops = g.chains_[ri].ops;
      for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        g.order_.push_back({ops[oi].t_end, ri, oi, ops[oi].is_send});
      }
    }
    std::sort(g.order_.begin(), g.order_.end(),
              [](const Graph::OrderedOp& a, const Graph::OrderedOp& b) {
                if (a.completion != b.completion) {
                  return a.completion < b.completion;
                }
                if (a.is_send != b.is_send) return a.is_send;
                if (a.rank_index != b.rank_index) {
                  return a.rank_index < b.rank_index;
                }
                return a.op_index < b.op_index;
              });
    return g;
  }
};

namespace {

bool inside_any(const std::vector<Graph::Window>& windows, std::uint64_t t) {
  return std::any_of(
      windows.begin(), windows.end(),
      [t](const Graph::Window& w) { return t >= w.begin && t < w.end; });
}

}  // namespace

Graph Graph::build(const TraceReport& report) {
  return GraphBuilder::run(report);
}

std::string_view Graph::track_of(rank_t world_rank) const {
  for (const RankChain& rc : chains_) {
    if (rc.world_rank == world_rank) return rc.track;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Schedule replay (what-if)
// ---------------------------------------------------------------------------

std::uint64_t Graph::finish_with_scale(std::span<const double> scale) const {
  const auto scale_of = [&](std::uint32_t rank_index) {
    const rank_t wr = chains_[rank_index].world_rank;
    return wr >= 0 && static_cast<std::size_t>(wr) < scale.size()
               ? scale[static_cast<std::size_t>(wr)]
               : 1.0;
  };
  std::vector<std::vector<double>> done(chains_.size());
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    done[i].assign(chains_[i].ops.size(), 0.0);
  }
  for (const OrderedOp& oo : order_) {
    const RankChain& rc = chains_[oo.rank_index];
    const Op& op = rc.ops[oo.op_index];
    const double prev = oo.op_index > 0
                            ? done[oo.rank_index][oo.op_index - 1]
                            : static_cast<double>(rc.t_begin);
    const std::uint64_t prev_orig =
        oo.op_index > 0 ? rc.ops[oo.op_index - 1].t_end : rc.t_begin;
    const std::uint64_t gap =
        op.t_start > prev_orig ? op.t_start - prev_orig : 0;
    const double ready =
        prev + scale_of(oo.rank_index) * static_cast<double>(gap);
    double finished = ready;
    if (!op.is_send) {
      // Arrival keeps the traced *transit* — the delay past the point
      // where both the send had been issued and the wait was underway.
      // Measuring it from t_send alone would fold a late receiver's own
      // lateness into the edge and pin a compute-bound rank's arrivals
      // at their observed wall times, making every what-if on that rank
      // report ~zero.  Unresolved edges still pin the wait to its
      // observed completion (a dropped sender cannot be sped up).
      const double arrival =
          op.resolved
              ? done[op.send_rank_index][op.send_op_index] +
                    static_cast<double>(
                        op.t_end - std::max(op.t_send, op.t_start))
              : static_cast<double>(op.t_end);
      finished = std::max(ready, arrival);
    }
    done[oo.rank_index][oo.op_index] = finished;
  }
  double end = 0.0;
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    const RankChain& rc = chains_[i];
    const std::uint64_t last_orig =
        rc.ops.empty() ? rc.t_begin : rc.ops.back().t_end;
    const double last_done = rc.ops.empty()
                                 ? static_cast<double>(rc.t_begin)
                                 : done[i].back();
    const std::uint64_t tail =
        rc.t_end > last_orig ? rc.t_end - last_orig : 0;
    end = std::max(end, last_done + scale_of(static_cast<std::uint32_t>(i)) *
                                        static_cast<double>(tail));
  }
  return static_cast<std::uint64_t>(std::llround(std::max(end, 0.0)));
}

// ---------------------------------------------------------------------------
// Critical path extraction
// ---------------------------------------------------------------------------

namespace {

/// Emit [a, b) on `rc`'s timeline into `reversed` (which is built walking
/// backward, so later subintervals are pushed first).  Compute segments
/// are split against the rank's phase windows: time inside the handshake
/// (or any other MPH phase) is blamed on the handshake, matching
/// TraceReport::blocked_breakdown semantics.
void emit_reversed(std::vector<PathSegment>& reversed,
                   const Graph::RankChain& rc, std::uint64_t a, std::uint64_t b,
                   SegmentKind kind, std::uint64_t flow, rank_t from_rank,
                   std::uint64_t from_t,
                   const std::vector<Graph::Window>& phase_windows) {
  if (b <= a) return;
  const auto push = [&](std::uint64_t s, std::uint64_t e, SegmentKind k) {
    if (e <= s) return;
    PathSegment seg;
    seg.world_rank = rc.world_rank;
    seg.track = rc.track;
    seg.kind = k;
    seg.t_start_ns = s;
    seg.t_end_ns = e;
    // The cross-rank edge annotates the first (earliest) subinterval; when
    // splitting we push backward, so stamp it on the piece that starts at
    // `a` below.
    if (s == a) {
      seg.flow = flow;
      seg.from_rank = from_rank;
      seg.from_t_ns = from_t;
    }
    reversed.push_back(std::move(seg));
  };
  if (kind != SegmentKind::compute) {
    push(a, b, kind);
    return;
  }
  // Walk the windows backward so pushes stay in reverse time order.
  std::uint64_t upper = b;
  for (auto it = phase_windows.rbegin(); it != phase_windows.rend(); ++it) {
    if (it->end <= a || it->begin >= upper) continue;
    const std::uint64_t lo = std::max(a, it->begin);
    const std::uint64_t hi = std::min(upper, it->end);
    push(hi, upper, SegmentKind::compute);
    push(lo, hi, SegmentKind::handshake);
    upper = lo;
  }
  push(a, upper, SegmentKind::compute);
}

}  // namespace

Profile Graph::profile() const {
  Profile out;
  out.unresolved_flows = unresolved_flows_;
  out.dropped_events = dropped_events_;
  if (chains_.empty()) return out;

  out.job_start_ns = ~std::uint64_t{0};
  std::size_t last = 0;
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    out.job_start_ns = std::min(out.job_start_ns, chains_[i].t_begin);
    // Strict > keeps ties on the lowest rank — deterministic paths.
    if (chains_[i].t_end > chains_[last].t_end) last = i;
  }
  out.job_end_ns = chains_[last].t_end;

  // Walk backward from the last join, hopping to the sender whenever a
  // bound receive is reached.  Time strictly decreases at every step, so
  // the walk terminates at some rank's launch anchor.
  std::vector<PathSegment> reversed;
  std::size_t cur = last;
  std::uint64_t upper = chains_[last].t_end;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(chains_[last].ops.size()) - 1;
  for (;;) {
    const RankChain& rc = chains_[cur];
    if (i < 0) {
      // Origin reached: charge back to the job start, not just this rank's
      // own launch — the launcher spawned it after the earlier ranks, and
      // that spawn latency is causally upstream of everything on the path.
      // This closes the accounting: path total == wall, always.
      emit_reversed(reversed, rc, std::min(out.job_start_ns, upper), upper,
                    SegmentKind::compute, 0, -1, 0, rc.phase_windows);
      break;
    }
    const Op& op = rc.ops[static_cast<std::size_t>(i)];
    if (op.is_send || !op.bound || op.t_end > upper) {
      // Local instants and non-binding waits dissolve into the enclosing
      // compute segment (op.t_end > upper only for foreign-thread records
      // that out-ran the jump target; they belong to a later part of the
      // timeline, not this hop).
      --i;
      continue;
    }
    emit_reversed(reversed, rc, op.t_end, upper, SegmentKind::compute, 0, -1,
                  0, rc.phase_windows);
    if (op.resolved) {
      // The path hops to the sender: the receiver is only charged from
      // the send instant (transit + completion); everything earlier runs
      // concurrently on the sender's timeline.
      emit_reversed(reversed, rc, op.t_send, op.t_end, op.wait_kind, op.flow,
                    chains_[op.send_rank_index].world_rank, op.t_send,
                    rc.phase_windows);
      cur = op.send_rank_index;
      upper = op.t_send;
      i = static_cast<std::ptrdiff_t>(op.send_op_index) - 1;
    } else {
      emit_reversed(reversed, rc, op.t_start, op.t_end, op.wait_kind, op.flow,
                    -1, 0, rc.phase_windows);
      upper = op.t_start;
      --i;
    }
  }
  out.path.assign(reversed.rbegin(), reversed.rend());

  // Coalesce contiguous same-rank same-kind pieces (keep hop boundaries:
  // a segment carrying a resolved arrival starts a new hop).
  std::vector<PathSegment> coalesced;
  for (PathSegment& seg : out.path) {
    if (!coalesced.empty() && seg.from_rank < 0 &&
        coalesced.back().world_rank == seg.world_rank &&
        coalesced.back().kind == seg.kind &&
        coalesced.back().t_end_ns == seg.t_start_ns) {
      coalesced.back().t_end_ns = seg.t_end_ns;
      if (coalesced.back().flow == 0) coalesced.back().flow = seg.flow;
    } else {
      coalesced.push_back(std::move(seg));
    }
  }
  out.path = std::move(coalesced);

  for (const PathSegment& seg : out.path) {
    out.path_total_ns += seg.duration_ns();
    out.kind_ns[static_cast<std::size_t>(seg.kind)] += seg.duration_ns();
  }

  out.ranks.reserve(chains_.size());
  for (const RankChain& rc : chains_) {
    RankProfile rp;
    rp.world_rank = rc.world_rank;
    rp.track = rc.track;
    rp.finish_ns = rc.t_end;
    rp.slack_ns = out.job_end_ns - rc.t_end;
    rp.dropped = rc.dropped;
    out.ranks.push_back(std::move(rp));
  }
  for (const PathSegment& seg : out.path) {
    for (RankProfile& rp : out.ranks) {
      if (rp.world_rank != seg.world_rank) continue;
      if (seg.kind == SegmentKind::compute) {
        rp.path_compute_ns += seg.duration_ns();
      } else {
        rp.path_wait_ns += seg.duration_ns();
      }
      break;
    }
  }
  return out;
}

std::vector<ComponentBlame> Profile::components() const {
  std::map<std::string, ComponentBlame> by_name;
  for (const PathSegment& seg : path) {
    ComponentBlame& cb = by_name[TraceReport::component_of(seg.track)];
    if (seg.kind == SegmentKind::compute) {
      cb.compute_ns += seg.duration_ns();
    } else {
      cb.wait_ns += seg.duration_ns();
    }
  }
  std::vector<ComponentBlame> out;
  out.reserve(by_name.size());
  for (auto& [name, cb] : by_name) {
    cb.component = name;
    cb.share = path_total_ns > 0 ? static_cast<double>(cb.total_ns()) /
                                       static_cast<double>(path_total_ns)
                                 : 0.0;
    out.push_back(std::move(cb));
  }
  std::sort(out.begin(), out.end(),
            [](const ComponentBlame& a, const ComponentBlame& b) {
              if (a.total_ns() != b.total_ns()) {
                return a.total_ns() > b.total_ns();
              }
              return a.component < b.component;
            });
  return out;
}

// ---------------------------------------------------------------------------
// What-if
// ---------------------------------------------------------------------------

namespace {

WhatIf run_what_if(const Graph& graph, const Profile& profile,
                   std::string target, double speedup_fraction,
                   const std::vector<double>& scale) {
  WhatIf w;
  w.target = std::move(target);
  w.speedup_fraction = speedup_fraction;
  w.baseline_end_ns = profile.job_end_ns;
  w.new_end_ns = graph.finish_with_scale(scale);
  return w;
}

}  // namespace

WhatIf what_if_component(const Graph& graph, const Profile& profile,
                         std::string_view component, double speedup_fraction) {
  std::vector<double> scale(
      static_cast<std::size_t>(graph.max_world_rank() + 1), 1.0);
  for (const RankProfile& rp : profile.ranks) {
    if (rp.world_rank < 0) continue;
    if (TraceReport::component_of(rp.track) == component) {
      scale[static_cast<std::size_t>(rp.world_rank)] =
          1.0 - speedup_fraction;
    }
  }
  return run_what_if(graph, profile, std::string(component), speedup_fraction,
                     scale);
}

WhatIf what_if_rank(const Graph& graph, const Profile& profile, rank_t rank,
                    double speedup_fraction) {
  std::vector<double> scale(
      static_cast<std::size_t>(graph.max_world_rank() + 1), 1.0);
  if (rank >= 0 && static_cast<std::size_t>(rank) < scale.size()) {
    scale[static_cast<std::size_t>(rank)] = 1.0 - speedup_fraction;
  }
  return run_what_if(graph, profile, "rank " + std::to_string(rank),
                     speedup_fraction, scale);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

std::string ms_string(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string pct_string(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void append_row(std::string& out, const std::string& label,
                const std::string& value) {
  out += "  ";
  out += label;
  out.append(label.size() < 22 ? 22 - label.size() : 2, ' ');
  out += value;
  out += '\n';
}

std::vector<const PathSegment*> longest_segments(const Profile& profile,
                                                 std::size_t top) {
  std::vector<const PathSegment*> segs;
  segs.reserve(profile.path.size());
  for (const PathSegment& s : profile.path) segs.push_back(&s);
  std::sort(segs.begin(), segs.end(),
            [](const PathSegment* a, const PathSegment* b) {
              if (a->duration_ns() != b->duration_ns()) {
                return a->duration_ns() > b->duration_ns();
              }
              return a->t_start_ns < b->t_start_ns;  // deterministic ties
            });
  if (segs.size() > top) segs.resize(top);
  return segs;
}

}  // namespace

std::string render_top_segments(const Profile& profile,
                                std::size_t top_segments) {
  std::string out;
  const auto segs = longest_segments(profile, top_segments);
  out += "top critical-path segments:\n";
  if (segs.empty()) out += "  (empty path)\n";
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const PathSegment& s = *segs[i];
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %2zu. %10s ms  %-15s %-24s t=%s..%s\n", i + 1,
                  ms_string(s.duration_ns()).c_str(),
                  segment_kind_name(s.kind), s.track.c_str(),
                  ms_string(s.t_start_ns).c_str(),
                  ms_string(s.t_end_ns).c_str());
    out += line;
  }
  return out;
}

std::string render_report(const Profile& profile,
                          std::span<const WhatIf> what_ifs,
                          std::size_t top_segments) {
  std::string out;
  out += "mph_prof critical path\n";
  append_row(out, "job wall", ms_string(profile.wall_ns()) + " ms  (t=" +
                                  ms_string(profile.job_start_ns) + ".." +
                                  ms_string(profile.job_end_ns) + " ms, " +
                                  std::to_string(profile.ranks.size()) +
                                  " ranks)");
  const double coverage =
      profile.wall_ns() > 0
          ? static_cast<double>(profile.path_total_ns) /
                static_cast<double>(profile.wall_ns())
          : 0.0;
  append_row(out, "critical path",
             ms_string(profile.path_total_ns) + " ms  (" +
                 pct_string(coverage) + " of wall, " +
                 std::to_string(profile.path.size()) + " segments)");
  if (profile.unresolved_flows > 0 || profile.dropped_events > 0) {
    out += "  warning: partial critical path — " +
           std::to_string(profile.unresolved_flows) +
           " flow edges unresolved (ring dropped " +
           std::to_string(profile.dropped_events) +
           " events); raise MINIMPI_TRACE=capacity=N for an exact path\n";
  }
  out += "\nblame by kind:\n";
  for (std::size_t k = 0; k < kSegmentKinds; ++k) {
    const double share =
        profile.path_total_ns > 0
            ? static_cast<double>(profile.kind_ns[k]) /
                  static_cast<double>(profile.path_total_ns)
            : 0.0;
    append_row(out, segment_kind_name(static_cast<SegmentKind>(k)),
               ms_string(profile.kind_ns[k]) + " ms  " + pct_string(share));
  }
  out += "\nblame by component (critical-path share):\n";
  for (const ComponentBlame& cb : profile.components()) {
    append_row(out, cb.component,
               pct_string(cb.share) + "  (compute " +
                   ms_string(cb.compute_ns) + " ms + wait " +
                   ms_string(cb.wait_ns) + " ms)");
  }
  out += '\n';
  out += render_top_segments(profile, top_segments);
  out += "\nslack per rank (how much later it could finish without moving "
         "the join):\n";
  for (const RankProfile& rp : profile.ranks) {
    std::string value = ms_string(rp.slack_ns) + " ms";
    if (rp.slack_ns == 0) value += "   <- binds the job";
    if (rp.dropped > 0) {
      value += "   (dropped " + std::to_string(rp.dropped) + " events)";
    }
    append_row(out, rp.track.empty() ? "rank " + std::to_string(rp.world_rank)
                                     : rp.track,
               value);
  }
  if (!what_ifs.empty()) {
    out += "\nwhat-if:\n";
    for (const WhatIf& w : what_ifs) {
      const double saved_share =
          w.baseline_end_ns > 0
              ? static_cast<double>(w.saved_ns()) /
                    static_cast<double>(w.baseline_end_ns)
              : 0.0;
      append_row(out,
                 w.target + " " + pct_string(w.speedup_fraction) + " faster",
                 "job finishes " + ms_string(w.saved_ns()) + " ms sooner (" +
                     pct_string(saved_share) + ")");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chrome-JSON overlay
// ---------------------------------------------------------------------------

namespace {

/// Nanoseconds as the trace-event microsecond decimal (same format as
/// TraceReport::to_chrome_json, duplicated because that helper is file
/// local there).
std::string us_string(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

}  // namespace

std::string annotate_chrome_json(const TraceReport& report,
                                 const Profile& profile) {
  std::string base = report.to_chrome_json();
  std::string overlay;
  for (const PathSegment& seg : profile.path) {
    overlay += ",\n{\"name\":\"critical\",\"cat\":\"critical\",\"ph\":\"X\","
               "\"pid\":0,\"tid\":" +
               std::to_string(seg.world_rank) +
               ",\"ts\":" + us_string(seg.t_start_ns) +
               ",\"dur\":" + us_string(seg.duration_ns()) +
               ",\"args\":{\"kind\":\"";
    overlay += segment_kind_name(seg.kind);
    overlay += "\"}}";
    if (seg.from_rank >= 0 && seg.flow != 0) {
      // Flow arrows: Perfetto draws sender → receiver for each resolved
      // message edge the path followed.
      const std::string id = std::to_string(seg.flow);
      overlay +=
          ",\n{\"name\":\"critical_flow\",\"cat\":\"critical\",\"ph\":\"s\","
          "\"id\":" +
          id + ",\"pid\":0,\"tid\":" + std::to_string(seg.from_rank) +
          ",\"ts\":" + us_string(seg.from_t_ns) + "}";
      overlay +=
          ",\n{\"name\":\"critical_flow\",\"cat\":\"critical\",\"ph\":\"f\","
          "\"bp\":\"e\",\"id\":" +
          id + ",\"pid\":0,\"tid\":" + std::to_string(seg.world_rank) +
          ",\"ts\":" + us_string(seg.t_end_ns) + "}";
    }
  }
  // Splice the overlay in before the traceEvents array closes.  The
  // closing sequence below is produced exactly once by to_chrome_json
  // (event strings escape newlines, so it cannot appear inside one).
  const std::string_view close = "\n],\n\"displayTimeUnit\"";
  const std::size_t pos = base.find(close);
  if (pos == std::string::npos) return base;  // unexpected layout: no overlay
  base.insert(pos, overlay);
  return base;
}

}  // namespace minimpi::prof
