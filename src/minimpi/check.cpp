#include "src/minimpi/check.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/minimpi/job.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi {

// ---------------------------------------------------------------------------
// CheckOptions
// ---------------------------------------------------------------------------

CheckOptions CheckOptions::all() noexcept {
  CheckOptions o;
  o.deadlock = o.type_matching = o.collectives = o.leaks = true;
  return o;
}

CheckOptions CheckOptions::parse(std::string_view text) noexcept {
  CheckOptions o;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find_first_of(", ", pos);
    const std::string_view token =
        text.substr(pos, end == std::string_view::npos ? end : end - pos);
    if (token == "all" || token == "1") return all();
    if (token == "deadlock") o.deadlock = true;
    if (token == "types") o.type_matching = true;
    if (token == "collectives") o.collectives = true;
    if (token == "leaks") o.leaks = true;
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  return o;
}

CheckOptions CheckOptions::merged_with_env() const noexcept {
  CheckOptions merged = *this;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, before rank threads.
  if (const char* env = std::getenv("MINIMPI_CHECK")) {
    const CheckOptions from_env = parse(env);
    merged.deadlock |= from_env.deadlock;
    merged.type_matching |= from_env.type_matching;
    merged.collectives |= from_env.collectives;
    merged.leaks |= from_env.leaks;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// CheckReport
// ---------------------------------------------------------------------------

std::string CheckReport::RankLeak::to_string() const {
  std::ostringstream out;
  out << "rank " << world_rank;
  if (!component.empty()) out << " (" << component << ")";
  out << ": " << envelopes << " unreceived envelope(s), " << posted_recvs
      << " unmatched posted receive(s), " << outstanding_requests
      << " outstanding request(s), " << live_comms << " live communicator(s)";
  return out.str();
}

std::string CheckReport::to_string() const {
  if (clean()) return "check: clean";
  std::ostringstream out;
  out << "check report:";
  for (const std::string& d : deadlocks) out << "\n  deadlock: " << d;
  for (const std::string& t : type_mismatches) {
    out << "\n  type mismatch: " << t;
  }
  for (const std::string& c : collective_mismatches) {
    out << "\n  collective mismatch: " << c;
  }
  for (const RankLeak& l : leaks) out << "\n  leak: " << l.to_string();
  return out.str();
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

Checker::Checker(CheckOptions options, int world_size)
    : options_(options),
      world_size_(world_size),
      edges_(static_cast<std::size_t>(world_size)),
      epochs_(new mph::atomic<std::uint64_t>[world_size]),
      live_comms_(new mph::atomic<std::int64_t>[world_size]),
      outstanding_requests_(new mph::atomic<std::int64_t>[world_size]),
      leaked_envelopes_(new mph::atomic<std::uint64_t>[world_size]),
      leaked_posted_(new mph::atomic<std::uint64_t>[world_size]) {
  for (int r = 0; r < world_size; ++r) {
    epochs_[r].store(0, std::memory_order_relaxed);
    live_comms_[r].store(0, std::memory_order_relaxed);
    outstanding_requests_[r].store(0, std::memory_order_relaxed);
    leaked_envelopes_[r].store(0, std::memory_order_relaxed);
    leaked_posted_[r].store(0, std::memory_order_relaxed);
  }
}

Checker::~Checker() { stop(); }

void Checker::bind(Job* job) {
  job_ = job;
  if (options_.deadlock && options_.watch_interval.count() > 0) {
    watcher_ = std::thread([this] { watch_loop(); });
  }
}

void Checker::stop() {
  {
    const std::lock_guard<std::mutex> lock(watcher_mutex_);
    stopping_ = true;
  }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

// --- wait-for graph ---------------------------------------------------------

void Checker::note_delivery(rank_t dest) noexcept {
  if (!options_.deadlock) return;
  if (dest < 0 || dest >= world_size_) return;
  epochs_[dest].fetch_add(1, std::memory_order_release);
}

void Checker::block(rank_t waiter, rank_t waits_on, const char* op,
                    context_t ctx, tag_t tag) {
  if (!options_.deadlock) return;
  if (waiter < 0 || waiter >= world_size_) return;
  if (const char* scoped = ScopedCheckOp::current()) op = scoped;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  BlockedEdge& edge = edges_[static_cast<std::size_t>(waiter)];
  edge.active = true;
  edge.waits_on = waits_on;
  edge.op = op;
  edge.context = ctx;
  edge.tag = tag;
  edge.seen_epoch = epochs_[waiter].load(std::memory_order_acquire);
  edge.soft = false;
  edge.spins = 0;
}

void Checker::refresh(rank_t waiter) noexcept {
  if (!options_.deadlock) return;
  if (waiter < 0 || waiter >= world_size_) return;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  BlockedEdge& edge = edges_[static_cast<std::size_t>(waiter)];
  if (edge.active) {
    edge.seen_epoch = epochs_[waiter].load(std::memory_order_acquire);
  }
}

void Checker::unblock(rank_t waiter) {
  if (!options_.deadlock) return;
  if (waiter < 0 || waiter >= world_size_) return;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  edges_[static_cast<std::size_t>(waiter)].active = false;
}

void Checker::iprobe_miss(rank_t owner, rank_t src, const char* op,
                          context_t ctx, tag_t tag) {
  if (!options_.deadlock) return;
  if (owner < 0 || owner >= world_size_) return;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  BlockedEdge& edge = edges_[static_cast<std::size_t>(owner)];
  const bool same_pattern = edge.active && edge.soft && edge.waits_on == src &&
                            edge.context == ctx && edge.tag == tag &&
                            std::string_view(edge.op) == op;
  if (same_pattern) {
    edge.spins += 1;
  } else {
    edge.active = true;
    edge.soft = true;
    edge.waits_on = src;
    edge.op = op;
    edge.context = ctx;
    edge.tag = tag;
    edge.spins = 1;
  }
  // Same critical section as the failed match check (the caller holds the
  // owner's mailbox mutex), so the epoch-confirmation argument for hard
  // edges carries over to soft ones.
  edge.seen_epoch = epochs_[owner].load(std::memory_order_acquire);
  edge.last_spin = std::chrono::steady_clock::now();
}

void Checker::iprobe_hit(rank_t owner) {
  if (!options_.deadlock) return;
  if (owner < 0 || owner >= world_size_) return;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  BlockedEdge& edge = edges_[static_cast<std::size_t>(owner)];
  if (edge.active && edge.soft) edge.active = false;
}

void Checker::note_send(rank_t src) {
  if (!options_.deadlock) return;
  if (src < 0 || src >= world_size_) return;
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  BlockedEdge& edge = edges_[static_cast<std::size_t>(src)];
  // A sender is visibly making progress; whatever it was spin-probing for,
  // it is not stuck in that loop *now*.  Hard (blocking) edges are immune:
  // a blocked rank cannot be sending.
  if (edge.active && edge.soft) edge.active = false;
}

std::vector<rank_t> Checker::find_cycle_locked(rank_t start) const {
  // The wait-for graph is functional (each rank is one thread, so at most
  // one blocked wait and one out-edge per rank): cycle detection is a chain
  // walk, bounded by world_size_ hops.  Only definite-source edges
  // participate — an any_source waiter could be satisfied by anyone, so it
  // can never be *proved* deadlocked.
  std::vector<rank_t> chain;
  rank_t current = start;
  const auto now = std::chrono::steady_clock::now();
  const auto soft_staleness_bound =
      std::max(std::chrono::milliseconds(100), 4 * options_.watch_interval);
  for (int hop = 0; hop <= world_size_; ++hop) {
    const BlockedEdge& edge = edges_[static_cast<std::size_t>(current)];
    if (!edge.active || edge.waits_on == any_source) return {};
    if (edge.waits_on < 0 || edge.waits_on >= world_size_) return {};
    // Epoch confirmation: the waiter must have examined every delivery made
    // to it so far.  Otherwise a matching envelope may already be in its
    // queue and the "cycle" would resolve itself.
    if (edge.seen_epoch !=
        epochs_[current].load(std::memory_order_acquire)) {
      return {};
    }
    // Soft (iprobe/test spin) edges prove far less than blocking ones: the
    // rank is free to do something else after a miss.  Accept one only when
    // it has missed the identical pattern at least twice (a spin loop, not
    // a glance) and missed *recently* — a rank that wandered off to compute
    // may be about to send, which would break the "cycle".
    if (edge.soft &&
        (edge.spins < 2 || now - edge.last_spin > soft_staleness_bound)) {
      return {};
    }
    chain.push_back(current);
    const rank_t next = edge.waits_on;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] == next) {
        // Cycle = chain[i..end].  It contains `start` only when i == 0, but
        // any confirmed cycle reachable from `start` still blocks `start`
        // forever, so report it either way.
        return {chain.begin() + static_cast<std::ptrdiff_t>(i), chain.end()};
      }
    }
    current = next;
  }
  return {};
}

std::string Checker::label_of(rank_t world_rank) const {
  if (job_ == nullptr) return {};
  return job_->rank_label(world_rank);
}

std::string Checker::describe_edge(rank_t waiter,
                                   const BlockedEdge& edge) const {
  const auto name = [&](rank_t r) {
    const std::string label = label_of(r);
    std::string out = label.empty() ? "rank" : label;
    out += "[" + std::to_string(r) + "]";
    return out;
  };
  std::ostringstream out;
  out << name(waiter) << " " << edge.op << "<-" << name(edge.waits_on)
      << " (context=" << edge.context << ", tag=";
  if (edge.tag == any_tag) {
    out << "*";
  } else {
    out << edge.tag;
  }
  out << ")";
  if (edge.soft) out << " [spinning, " << edge.spins << " misses]";
  return out.str();
}

std::string Checker::format_cycle(const std::vector<rank_t>& cycle,
                                  const std::vector<BlockedEdge>& edges) const {
  std::ostringstream out;
  out << "wait-for cycle across " << cycle.size() << " rank(s): ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out << " ; ";
    out << describe_edge(cycle[i],
                         edges[static_cast<std::size_t>(cycle[i])]);
  }
  return out.str();
}

std::optional<std::string> Checker::deadlock_cycle(rank_t rank) {
  if (!options_.deadlock) return std::nullopt;
  if (rank < 0 || rank >= world_size_) return std::nullopt;
  std::vector<rank_t> cycle;
  std::vector<BlockedEdge> snapshot;
  {
    const std::lock_guard<std::mutex> lock(graph_mutex_);
    cycle = find_cycle_locked(rank);
    if (cycle.empty()) return std::nullopt;
    snapshot = edges_;
  }
  // Format outside graph_mutex_: label_of takes the job's label lock.
  std::string text = format_cycle(cycle, snapshot);
  {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    deadlocks_.push_back(text);
  }
  return text;
}

void Checker::watch_loop() {
  mph::util::set_thread_label("mpicheck watcher");
  std::unique_lock<std::mutex> watcher_lock(watcher_mutex_);
  while (!stopping_) {
    watcher_cv_.wait_for(watcher_lock, options_.watch_interval);
    if (stopping_) return;
    if (job_ == nullptr || job_->aborted()) continue;

    std::vector<rank_t> cycle;
    std::vector<BlockedEdge> snapshot;
    {
      const std::lock_guard<std::mutex> lock(graph_mutex_);
      for (rank_t r = 0; r < world_size_ && cycle.empty(); ++r) {
        if (edges_[static_cast<std::size_t>(r)].active) {
          cycle = find_cycle_locked(r);
        }
      }
      if (!cycle.empty()) snapshot = edges_;
    }
    if (cycle.empty()) continue;

    const std::string text = format_cycle(cycle, snapshot);
    {
      const std::lock_guard<std::mutex> lock(report_mutex_);
      deadlocks_.push_back(text);
    }
    MPH_DIAG_LOG(error) << "mpicheck: " << text;
    const rank_t culprit = cycle.front();
    job_->abort(AbortInfo{culprit, label_of(culprit), "deadlock", text});
    // The abort wakes every blocked rank; members unwind with AbortedError
    // and the job tears down.  Keep running (idle) until stop() so late
    // blockers still observe the abort flag through their own waits.
  }
}

// --- type matching ----------------------------------------------------------

std::optional<std::string> Checker::type_mismatch(
    const TypeSig& sent, std::size_t payload_bytes, const TypeSig& expected,
    std::size_t buffer_bytes, rank_t sender, rank_t receiver, context_t ctx,
    tag_t tag) {
  if (!options_.type_matching) return std::nullopt;
  // Raw/control traffic carries no signature; only verify when both the
  // send and the receive were typed.
  if (!sent.present() || !expected.present()) return std::nullopt;
  if (sent.matches(expected)) return std::nullopt;
  const auto side = [&](rank_t r, const TypeSig& sig, std::size_t bytes) {
    const std::string label = label_of(r);
    std::ostringstream out;
    if (!label.empty()) out << label;
    out << "[" << r << "] " << sig.name << " x"
        << (sig.size != 0 ? bytes / sig.size : 0) << " (" << bytes
        << " bytes)";
    return out.str();
  };
  std::ostringstream out;
  out << "send/recv element types disagree on (context=" << ctx
      << ", tag=" << tag << "): sender " << side(sender, sent, payload_bytes)
      << " vs receiver " << side(receiver, expected, buffer_bytes);
  std::string text = out.str();
  {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    type_mismatches_.push_back(text);
  }
  return text;
}

// --- collective consistency -------------------------------------------------

void Checker::on_collective(context_t ctx, rank_t group_leader,
                            std::uint32_t seq, const char* op, rank_t root,
                            std::uint64_t count, std::uint32_t elem_size,
                            int comm_size, rank_t reporter) {
  if (!options_.collectives) return;
  std::string text;
  {
    const std::lock_guard<std::mutex> lock(coll_mutex_);
    const auto key = std::make_tuple(ctx, group_leader, seq);
    auto [it, inserted] = collectives_.try_emplace(
        key,
        CollectiveRecord{op, root, count, elem_size, comm_size, reporter, 0});
    CollectiveRecord& rec = it->second;
    if (!inserted) {
      const bool count_ok = rec.count == kUncheckedCount ||
                            count == kUncheckedCount || rec.count == count;
      if (std::string_view(rec.op) != op || rec.root != root || !count_ok ||
          rec.elem_size != elem_size) {
        std::ostringstream out;
        out << "collective #" << seq << " on context " << ctx
            << " diverges: " << label_of(rec.first_reporter) << "["
            << rec.first_reporter << "] called " << rec.op
            << "(root=" << rec.root;
        if (rec.count != kUncheckedCount) out << ", count=" << rec.count;
        out << ", elem=" << rec.elem_size << "B) but " << label_of(reporter)
            << "[" << reporter << "] called " << op << "(root=" << root;
        if (count != kUncheckedCount) out << ", count=" << count;
        out << ", elem=" << elem_size << "B)";
        text = out.str();
      }
    }
    if (text.empty()) {
      rec.arrived += 1;
      if (rec.arrived >= rec.comm_size) collectives_.erase(it);
    }
  }
  if (!text.empty()) {
    {
      const std::lock_guard<std::mutex> lock(report_mutex_);
      collective_mismatches_.push_back(text);
    }
    throw CollectiveMismatchError(text);
  }
}

// --- resource-leak audit -----------------------------------------------------

void Checker::note_comm_created(rank_t world_rank) noexcept {
  if (!options_.leaks) return;
  if (world_rank < 0 || world_rank >= world_size_) return;
  live_comms_[world_rank].fetch_add(1, std::memory_order_relaxed);
}

void Checker::note_comm_destroyed(rank_t world_rank) noexcept {
  if (!options_.leaks) return;
  if (world_rank < 0 || world_rank >= world_size_) return;
  live_comms_[world_rank].fetch_sub(1, std::memory_order_relaxed);
}

void Checker::note_request_posted(rank_t world_rank) noexcept {
  if (!options_.leaks) return;
  if (world_rank < 0 || world_rank >= world_size_) return;
  outstanding_requests_[world_rank].fetch_add(1, std::memory_order_relaxed);
}

void Checker::note_request_consumed(rank_t world_rank) noexcept {
  if (!options_.leaks) return;
  if (world_rank < 0 || world_rank >= world_size_) return;
  outstanding_requests_[world_rank].fetch_sub(1, std::memory_order_relaxed);
}

void Checker::record_drain(rank_t world_rank, std::size_t envelopes,
                           std::size_t posted_recvs) {
  if (!options_.leaks) return;
  if (world_rank < 0 || world_rank >= world_size_) return;
  leaked_envelopes_[world_rank].fetch_add(envelopes,
                                          std::memory_order_relaxed);
  leaked_posted_[world_rank].fetch_add(posted_recvs,
                                       std::memory_order_relaxed);
}

CheckReport::RankLeak Checker::rank_leak(rank_t world_rank) const {
  CheckReport::RankLeak leak;
  leak.world_rank = world_rank;
  leak.component = label_of(world_rank);
  if (world_rank < 0 || world_rank >= world_size_) return leak;
  leak.envelopes = leaked_envelopes_[world_rank].load(std::memory_order_relaxed);
  leak.posted_recvs =
      leaked_posted_[world_rank].load(std::memory_order_relaxed);
  const std::int64_t requests =
      outstanding_requests_[world_rank].load(std::memory_order_relaxed);
  leak.outstanding_requests =
      requests > 0 ? static_cast<std::size_t>(requests) : 0;
  const std::int64_t comms =
      live_comms_[world_rank].load(std::memory_order_relaxed);
  leak.live_comms = comms > 0 ? static_cast<std::size_t>(comms) : 0;
  return leak;
}

CheckReport Checker::report() const {
  CheckReport out;
  {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    out.deadlocks = deadlocks_;
    out.type_mismatches = type_mismatches_;
    out.collective_mismatches = collective_mismatches_;
  }
  if (options_.leaks) {
    for (rank_t r = 0; r < world_size_; ++r) {
      CheckReport::RankLeak leak = rank_leak(r);
      if (!leak.clean()) out.leaks.push_back(std::move(leak));
    }
  }
  return out;
}

}  // namespace minimpi
