#include "src/minimpi/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/util/diagnostics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MPH_MONITOR_HAS_UNIX_SOCKET 1
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define MPH_MONITOR_HAS_UNIX_SOCKET 0
#endif

namespace minimpi {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

MonitorOptions MonitorOptions::parse(std::string_view text) {
  MonitorOptions opts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find_first_of(", ", start);
    const std::string_view token =
        text.substr(start, end == std::string_view::npos ? end : end - start);
    if (token == "1" || token == "on" || token == "true") {
      opts.enabled = true;
    } else if (token.rfind("interval=", 0) == 0) {
      const std::string value(token.substr(9));
      const long parsed = std::strtol(value.c_str(), nullptr, 10);
      if (parsed >= 0) {
        opts.enabled = true;
        opts.interval = std::chrono::milliseconds(parsed);
      }
    } else if (token.rfind("dir=", 0) == 0) {
      opts.enabled = true;
      opts.dir = std::string(token.substr(4));
    } else if (token == "nosocket") {
      opts.socket = false;
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return opts;
}

MonitorOptions MonitorOptions::merged_with_env() const {
  MonitorOptions merged = *this;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at job construction.
  const char* env = std::getenv("MINIMPI_MONITOR");
  if (env == nullptr) return merged;
  const MonitorOptions from_env = parse(env);
  if (from_env.enabled) {
    // The environment both enables and configures: a user exporting
    // MINIMPI_MONITOR=interval=250,dir=/tmp/mon expects those values even
    // when the program left JobOptions::monitor at its defaults.
    merged.enabled = true;
    if (from_env.interval != MonitorOptions{}.interval) {
      merged.interval = from_env.interval;
    }
    if (from_env.dir != MonitorOptions{}.dir) merged.dir = from_env.dir;
    merged.socket = merged.socket && from_env.socket;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(int world_size)
    : world_size_(std::max(world_size, 0)),
      epoch_(std::chrono::steady_clock::now()),
      slots_(std::make_unique<RankSlots[]>(
          static_cast<std::size_t>(world_size_))),
      components_(static_cast<std::size_t>(world_size_)),
      probes_(static_cast<std::size_t>(world_size_)) {}

std::uint64_t MetricsRegistry::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void MetricsRegistry::on_send(rank_t rank, std::uint64_t bytes) noexcept {
  if (!valid(rank)) return;
  RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  s.sends.fetch_add(1, std::memory_order_relaxed);
  s.send_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void MetricsRegistry::on_delivered(rank_t rank, std::uint64_t bytes) noexcept {
  if (!valid(rank)) return;
  RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  s.delivered.fetch_add(1, std::memory_order_relaxed);
  s.delivered_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void MetricsRegistry::on_match(rank_t rank, std::uint64_t latency_ns) noexcept {
  if (!valid(rank)) return;
  RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  // Data first, count last with release: a reader that observes this
  // event in `count` (acquire) is guaranteed to find it in `sum` and its
  // bucket too.  The original all-relaxed, count-first order let a live
  // snapshot see count = 1 with empty buckets — a phantom event
  // (mph_racer litmus metrics_histogram; see the header contract).
  s.latency_sum.fetch_add(latency_ns, std::memory_order_relaxed);
  s.latency_buckets[metrics_histogram_bucket(latency_ns)].fetch_add(
      1, std::memory_order_relaxed);
  s.latency_count.fetch_add(1, std::memory_order_release);
}

void MetricsRegistry::on_collective(rank_t rank) noexcept {
  if (!valid(rank)) return;
  slots_[static_cast<std::size_t>(rank)].collectives.fetch_add(
      1, std::memory_order_relaxed);
}

void MetricsRegistry::on_fault(rank_t rank) noexcept {
  if (!valid(rank)) return;
  slots_[static_cast<std::size_t>(rank)].faults.fetch_add(
      1, std::memory_order_relaxed);
}

void MetricsRegistry::add_blocked_ns(rank_t rank, std::uint64_t ns) noexcept {
  if (!valid(rank)) return;
  slots_[static_cast<std::size_t>(rank)].blocked_ns.fetch_add(
      ns, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::note_block_start(rank_t rank) noexcept {
  const std::uint64_t now = now_ns();
  if (valid(rank)) {
    slots_[static_cast<std::size_t>(rank)].blocked_since.store(
        now, std::memory_order_relaxed);
  }
  return now;
}

void MetricsRegistry::note_block_end(rank_t rank,
                                     std::uint64_t start_ns) noexcept {
  if (!valid(rank)) return;
  RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  // Clear the open-wait stamp before flushing so a racing reader
  // momentarily under-counts rather than double-counts the wait.
  s.blocked_since.store(0, std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  if (now > start_ns) {
    s.blocked_ns.fetch_add(now - start_ns, std::memory_order_relaxed);
  }
}

void MetricsRegistry::set_queue_depth(rank_t rank,
                                      std::uint64_t depth) noexcept {
  if (!valid(rank)) return;
  RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  s.queue_depth.store(depth, std::memory_order_relaxed);
  // Callers update under the owning mailbox's mutex, so a plain
  // load-compare-store cannot lose a maximum to a concurrent writer.
  if (depth > s.queue_high_water.load(std::memory_order_relaxed)) {
    s.queue_high_water.store(depth, std::memory_order_relaxed);
  }
}

void MetricsRegistry::set_component(rank_t rank, std::string name) {
  if (!valid(rank)) return;
  const std::lock_guard<std::mutex> lock(meta_mutex_);
  components_[static_cast<std::size_t>(rank)] = std::move(name);
}

std::string MetricsRegistry::component(rank_t rank) const {
  if (!valid(rank)) return {};
  const std::lock_guard<std::mutex> lock(meta_mutex_);
  return components_[static_cast<std::size_t>(rank)];
}

void MetricsRegistry::set_handshake_ns(rank_t rank,
                                       std::uint64_t ns) noexcept {
  if (!valid(rank)) return;
  slots_[static_cast<std::size_t>(rank)].handshake_ns.store(
      ns, std::memory_order_relaxed);
}

void MetricsRegistry::add_probe(rank_t rank, std::string name,
                                std::function<std::uint64_t()> probe) {
  if (!valid(rank) || !probe) return;
  const std::lock_guard<std::mutex> lock(meta_mutex_);
  probes_[static_cast<std::size_t>(rank)].emplace_back(std::move(name),
                                                       std::move(probe));
}

RankMetrics MetricsRegistry::read_rank(rank_t rank) const {
  RankMetrics out;
  if (!valid(rank)) return out;
  const RankSlots& s = slots_[static_cast<std::size_t>(rank)];
  out.world_rank = rank;
  out.sends = s.sends.load(std::memory_order_relaxed);
  out.send_bytes = s.send_bytes.load(std::memory_order_relaxed);
  out.delivered = s.delivered.load(std::memory_order_relaxed);
  out.delivered_bytes = s.delivered_bytes.load(std::memory_order_relaxed);
  out.collectives = s.collectives.load(std::memory_order_relaxed);
  out.faults = s.faults.load(std::memory_order_relaxed);
  out.blocked_ns = s.blocked_ns.load(std::memory_order_relaxed);
  // Fold in the wait that is open right now (if any): a stalled rank's
  // blocking must be visible to live snapshots as it accrues.
  const std::uint64_t since = s.blocked_since.load(std::memory_order_relaxed);
  if (since != 0) {
    const std::uint64_t now = now_ns();
    if (now > since) out.blocked_ns += now - since;
  }
  out.queue_depth = s.queue_depth.load(std::memory_order_relaxed);
  out.queue_high_water = s.queue_high_water.load(std::memory_order_relaxed);
  out.handshake_ns = s.handshake_ns.load(std::memory_order_relaxed);
  // Count first with acquire, paired with on_match's release increment:
  // every event visible in `count` is then also visible in `sum` and the
  // buckets read below (buckets_total >= count, never phantom events).
  out.matches = s.latency_count.load(std::memory_order_acquire);
  out.match_latency.count = out.matches;
  out.match_latency.sum = s.latency_sum.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMetricsHistogramBuckets; ++i) {
    out.match_latency.buckets[i] =
        s.latency_buckets[i].load(std::memory_order_relaxed);
  }
  {
    const std::lock_guard<std::mutex> lock(meta_mutex_);
    out.component = components_[static_cast<std::size_t>(rank)];
    for (const auto& [name, probe] : probes_[static_cast<std::size_t>(rank)]) {
      out.values.emplace_back(name, probe());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Escape a Prometheus label value (backslash, quote, newline).
void append_prom_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::vector<ComponentMetrics> MetricsSnapshot::by_component() const {
  std::vector<ComponentMetrics> out;
  for (const RankMetrics& r : ranks) {
    const std::string& name = r.component.empty() ? std::string("rank")
                                                  : r.component;
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const ComponentMetrics& c) {
                             return c.component == name;
                           });
    if (it == out.end()) {
      out.push_back(ComponentMetrics{});
      it = out.end() - 1;
      it->component = name;
    }
    it->ranks += 1;
    it->alive += r.alive ? 1 : 0;
    it->sends += r.sends;
    it->send_bytes += r.send_bytes;
    it->delivered += r.delivered;
    it->delivered_bytes += r.delivered_bytes;
    it->blocked_ns += r.blocked_ns;
    it->queue_depth += r.queue_depth;
    it->queue_high_water =
        std::max(it->queue_high_water, r.queue_high_water);
  }
  return out;
}

std::string MetricsSnapshot::to_jsonl() const {
  std::string out;
  out.reserve(512 + ranks.size() * 512);
  out += "{\"kind\": \"";
  out += kKind;
  out += "\", \"seq\": " + std::to_string(seq) +
         ", \"tNs\": " + std::to_string(t_ns) +
         ", \"wallMs\": " + std::to_string(wall_ms);
  out += ", \"job\": {\"messages\": " + std::to_string(comm.messages) +
         ", \"payloadBytes\": " + std::to_string(comm.payload_bytes) +
         ", \"contextsAllocated\": " +
         std::to_string(comm.contexts_allocated) +
         ", \"queueHighWater\": " + std::to_string(comm.queue_high_water) +
         ", \"wildcardRecvs\": " + std::to_string(comm.wildcard_recvs) +
         ", \"contexts\": [";
  for (std::size_t i = 0; i < comm.messages_by_context.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"context\": " +
           std::to_string(comm.messages_by_context[i].first) +
           ", \"messages\": " +
           std::to_string(comm.messages_by_context[i].second) + "}";
  }
  out += "]}, \"ranks\": [";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankMetrics& r = ranks[i];
    if (i > 0) out += ", ";
    out += "{\"rank\": " + std::to_string(r.world_rank) +
           ", \"component\": \"";
    append_json_escaped(out, r.component);
    out += "\", \"alive\": ";
    out += r.alive ? "true" : "false";
    out += ", \"sends\": " + std::to_string(r.sends) +
           ", \"sendBytes\": " + std::to_string(r.send_bytes) +
           ", \"delivered\": " + std::to_string(r.delivered) +
           ", \"deliveredBytes\": " + std::to_string(r.delivered_bytes) +
           ", \"matches\": " + std::to_string(r.matches) +
           ", \"collectives\": " + std::to_string(r.collectives) +
           ", \"faults\": " + std::to_string(r.faults) +
           ", \"blockedNs\": " + std::to_string(r.blocked_ns) +
           ", \"queueDepth\": " + std::to_string(r.queue_depth) +
           ", \"queueHighWater\": " + std::to_string(r.queue_high_water) +
           ", \"handshakeNs\": " + std::to_string(r.handshake_ns);
    out += ", \"matchLatency\": {\"count\": " +
           std::to_string(r.match_latency.count) +
           ", \"sumNs\": " + std::to_string(r.match_latency.sum) +
           ", \"buckets\": [";
    // Trim trailing zero buckets: the fixed array serializes sparsely.
    std::size_t last = kMetricsHistogramBuckets;
    while (last > 0 && r.match_latency.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(r.match_latency.buckets[b]);
    }
    out += "]}, \"values\": [";
    for (std::size_t v = 0; v < r.values.size(); ++v) {
      if (v > 0) out += ", ";
      out += "{\"name\": \"";
      append_json_escaped(out, r.values[v].first);
      out += "\", \"value\": " + std::to_string(r.values[v].second) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  out.reserve(1024 + ranks.size() * 1024);
  const auto labels = [](const RankMetrics& r) {
    std::string l = "{rank=\"" + std::to_string(r.world_rank) +
                    "\",component=\"";
    append_prom_escaped(l, r.component);
    l += "\"}";
    return l;
  };
  const auto series = [&](const char* name, const char* type,
                          const char* help,
                          std::uint64_t(*get)(const RankMetrics&)) {
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " " + type + "\n";
    for (const RankMetrics& r : ranks) {
      out += name + labels(r) + " " + std::to_string(get(r)) + "\n";
    }
  };
  out += "# HELP mph_messages_total Envelopes delivered job-wide.\n";
  out += "# TYPE mph_messages_total counter\n";
  out += "mph_messages_total " + std::to_string(comm.messages) + "\n";
  out += "# HELP mph_payload_bytes_total Payload volume delivered job-wide.\n";
  out += "# TYPE mph_payload_bytes_total counter\n";
  out += "mph_payload_bytes_total " + std::to_string(comm.payload_bytes) +
         "\n";
  out += "# HELP mph_contexts_allocated Communicators created job-wide.\n";
  out += "# TYPE mph_contexts_allocated counter\n";
  out += "mph_contexts_allocated " +
         std::to_string(comm.contexts_allocated) + "\n";
  out += "# HELP mph_wildcard_recvs_total Wildcard receives issued "
         "job-wide.\n";
  out += "# TYPE mph_wildcard_recvs_total counter\n";
  out += "mph_wildcard_recvs_total " + std::to_string(comm.wildcard_recvs) +
         "\n";
  series("mph_sends_total", "counter", "Envelopes sent by the rank.",
         [](const RankMetrics& r) { return r.sends; });
  series("mph_send_bytes_total", "counter", "Payload bytes sent by the rank.",
         [](const RankMetrics& r) { return r.send_bytes; });
  series("mph_delivered_total", "counter",
         "Envelopes delivered to the rank.",
         [](const RankMetrics& r) { return r.delivered; });
  series("mph_delivered_bytes_total", "counter",
         "Payload bytes delivered to the rank.",
         [](const RankMetrics& r) { return r.delivered_bytes; });
  series("mph_collectives_total", "counter",
         "Collective invocations entered by the rank.",
         [](const RankMetrics& r) { return r.collectives; });
  series("mph_faults_total", "counter",
         "Fault-plan rules fired on the rank.",
         [](const RankMetrics& r) { return r.faults; });
  series("mph_blocked_ns_total", "counter",
         "Nanoseconds the rank spent blocked in mailbox waits.",
         [](const RankMetrics& r) { return r.blocked_ns; });
  series("mph_queue_depth", "gauge",
         "Unmatched envelopes queued at the rank's mailbox.",
         [](const RankMetrics& r) { return r.queue_depth; });
  series("mph_queue_high_water", "gauge",
         "Largest unmatched backlog the rank's mailbox ever reached.",
         [](const RankMetrics& r) { return r.queue_high_water; });
  series("mph_handshake_ns", "gauge",
         "MPH handshake duration of the rank.",
         [](const RankMetrics& r) { return r.handshake_ns; });
  series("mph_alive", "gauge", "1 while the rank has not failed.",
         [](const RankMetrics& r) {
           return static_cast<std::uint64_t>(r.alive ? 1 : 0);
         });
  out += "# HELP mph_match_latency_ns Blocking-receive wait-to-match "
         "latency.\n";
  out += "# TYPE mph_match_latency_ns histogram\n";
  for (const RankMetrics& r : ranks) {
    std::string base = "mph_match_latency_ns_bucket{rank=\"" +
                       std::to_string(r.world_rank) + "\",component=\"";
    append_prom_escaped(base, r.component);
    base += "\",le=\"";
    std::uint64_t cumulative = 0;
    std::size_t last = kMetricsHistogramBuckets;
    while (last > 0 && r.match_latency.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      cumulative += r.match_latency.buckets[b];
      out += base + std::to_string(metrics_histogram_upper(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += base + "+Inf\"} " + std::to_string(r.match_latency.count) + "\n";
    out += "mph_match_latency_ns_sum" + labels(r) + " " +
           std::to_string(r.match_latency.sum) + "\n";
    out += "mph_match_latency_ns_count" + labels(r) + " " +
           std::to_string(r.match_latency.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

Monitor::Monitor(MonitorOptions options, SnapshotFn snapshot,
                 ObserveFn observe)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      observe_(std::move(observe)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  // Truncate a previous run's JSONL so one file holds one job's history.
  std::ofstream(options_.jsonl_path(), std::ios::trunc);
#if MPH_MONITOR_HAS_UNIX_SOCKET
  if (options_.socket) {
    const std::string path = options_.socket_path();
    sockaddr_un addr{};
    if (path.size() < sizeof(addr.sun_path)) {
      ::unlink(path.c_str());
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      addr.sun_family = AF_UNIX;
      std::copy(path.begin(), path.end(), addr.sun_path);
      if (fd >= 0 &&
          ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) == 0 &&
          ::listen(fd, 4) == 0 &&
          ::fcntl(fd, F_SETFL, O_NONBLOCK) == 0) {
        listen_fd_ = fd;
      } else {
        if (fd >= 0) ::close(fd);
        MPH_DIAG_LOG(warn) << "mph_mon: cannot serve metrics socket at '"
                           << path << "' — socket disabled";
      }
    } else {
      MPH_DIAG_LOG(warn) << "mph_mon: socket path '" << path
                         << "' exceeds the AF_UNIX limit — socket disabled";
    }
  }
#endif
  thread_ = std::thread([this] { run(); });
}

Monitor::~Monitor() { stop(); }

void Monitor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot after the thread quiesced: the files end on the job's
  // last state even when the interval never elapsed.
  publish(snapshot_());
#if MPH_MONITOR_HAS_UNIX_SOCKET
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path().c_str());
    listen_fd_ = -1;
  }
#endif
  const std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

void Monitor::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    publish(snapshot_());
    lock.lock();
  }
}

void Monitor::publish(const MetricsSnapshot& snap) {
  // The watch hook first: its alert gauges belong in this publish's
  // exposition, and a rule firing here is stamped with this snapshot.
  const std::string alerts = observe_ ? observe_(snap) : std::string();
  const std::string line = snap.to_jsonl();
  {
    std::ofstream jsonl(options_.jsonl_path(), std::ios::app);
    if (jsonl) jsonl << line << "\n";
  }
  {
    // Rewrite-then-rename so a scraper never reads a half-written file.
    const std::string tmp = options_.exposition_path() + ".tmp";
    std::ofstream prom(tmp, std::ios::trunc);
    if (prom) {
      prom << snap.to_prometheus();
      prom << alerts;
      prom.close();
      std::error_code ec;
      std::filesystem::rename(tmp, options_.exposition_path(), ec);
    }
  }
  serve_socket(line);
}

void Monitor::serve_socket(const std::string& line) {
#if MPH_MONITOR_HAS_UNIX_SOCKET
  if (listen_fd_ < 0) return;
  // Drain every pending connection; each client gets the latest snapshot
  // line and an EOF — the whole protocol.
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) break;
    std::size_t off = 0;
    const std::string payload = line + "\n";
    while (off < payload.size()) {
      const ssize_t n =
          ::write(client, payload.data() + off, payload.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
#else
  (void)line;
#endif
}

}  // namespace minimpi
