// trace.hpp — the decision-trace format of mph_verify.
//
// A schedule explored by the verify engine is fully described by the
// ordered list of wildcard match decisions it made: step k of the trace
// says "rank R's wildcard receive/probe (context, tag) matched sender S,
// chosen from this candidate set".  Dumping a failing run's trace and
// replaying it later (mph_verify --schedule trace.json) reproduces the
// exact same matching, because wildcard choices are the *only*
// nondeterminism minimpi jobs have under a verifying scheduler: exact-
// source receives are deterministic (each sender is one thread delivering
// in program order), collectives are built on exact-source traffic, and
// all job randomness flows from the recorded seed.
//
// The on-disk format is a small JSON document, written and parsed here
// with no external dependencies:
//
//   {
//     "version": 1,
//     "seed": 42,
//     "decisions": [
//       {"step": 0, "rank": 2, "op": "recv", "context": 0, "tag": 7,
//        "chose": 1, "candidates": [0, 1], "immediate": false},
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/minimpi/types.hpp"

namespace minimpi::verify {

/// One wildcard match decision.
struct Decision {
  rank_t rank = -1;        ///< owner of the wildcard receive/probe
  std::string op = "recv"; ///< "recv" / "probe" / "iprobe"
  context_t context = kWorldContext;
  tag_t tag = any_tag;
  rank_t chose = -1;       ///< the sender the wildcard was resolved to
  /// Every sender that was matchable at decision time (ascending).  The
  /// exploration tree branches over exactly this set.
  std::vector<rank_t> candidates;
  /// True for decisions taken without a quiescence fence (a nonblocking
  /// wildcard iprobe that found several queued candidates).  These are
  /// recorded and replayed but not exhaustively explored.
  bool immediate = false;

  [[nodiscard]] bool operator==(const Decision&) const = default;
};

/// A complete schedule: the job seed plus every decision, in order.
struct Trace {
  std::uint64_t seed = 0;
  std::vector<Decision> decisions;

  [[nodiscard]] bool operator==(const Trace&) const = default;

  /// Serialize to the JSON document described above.
  [[nodiscard]] std::string to_json() const;

  /// Parse a dumped trace.  Throws Error(Errc::invalid_argument) with a
  /// position-annotated message on malformed input.
  [[nodiscard]] static Trace from_json(const std::string& text);

  /// Human-readable rendering, one line per step:
  ///   #0 ocean[2] recv <- atmosphere[1] (context=0, tag=7) candidates={0,1}
  /// `label` maps a world rank to its component name (may be empty/null).
  [[nodiscard]] std::string to_string(
      const std::function<std::string(rank_t)>& label = {}) const;
};

}  // namespace minimpi::verify
