// verify_scheduler.hpp — the serializing scheduler behind mph_verify.
//
// Under this scheduler every wildcard (ANY_SOURCE) receive or probe is a
// *fence*: the owning rank is held until every other rank is provably
// unable to produce further candidate messages, the complete candidate set
// is read from the owner's mailbox, and the exploration engine picks the
// matched sender explicitly.  Because exact-source receives are already
// deterministic in minimpi (each sender is a single thread delivering in
// program order, and matching within one sender is FIFO), wildcard choices
// are the only source of schedule nondeterminism — so driving them from a
// decision sequence makes whole runs replayable, and enumerating them
// explores the entire matching space.  See DESIGN.md §10 for the
// quiescence and completeness arguments.
//
// Thread model:
//   * rank threads call the Scheduler hooks (their own state transitions,
//     vector clocks, fences);
//   * one monitor thread detects quiescence, reads candidate sets, asks the
//     engine for decisions, and releases held ranks;
//   * only a rank's OWN thread ever changes its run-state — foreign-thread
//     hooks (on_match, note_delivery) touch only epochs, clocks, and the
//     validation version counter.  This is what keeps a held rank from
//     being unmarked behind its back and hanging forever.
//
// Lock order: mailbox mutex -> scheduler mutex is allowed; the scheduler
// never takes a mailbox mutex while holding its own (the monitor snapshots
// under its mutex, unlocks, queries mailboxes, relocks, and validates via
// the version counter).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/schedule.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {
class Job;
}  // namespace minimpi

namespace minimpi::verify {

/// A choice the engine must make: which of `candidates` (ascending world
/// ranks, all matchable *now*) does `owner`'s wildcard operation match?
struct DecisionPoint {
  rank_t owner = -1;
  context_t context = kWorldContext;
  tag_t tag = any_tag;
  std::string op = "recv";
  std::vector<rank_t> candidates;
  /// Nonblocking wildcard iprobe with several queued candidates: decided
  /// immediately (no fence), recorded but not exhaustively explored.
  bool immediate = false;
};

/// A wildcard receive observed with more than one concurrently-matchable
/// sender — the race the detector reports.  `concurrent` is true when at
/// least two candidate sends are causally unordered (vector clocks); a
/// causally-ordered candidate set is still a matching race in MPI (non-
/// overtaking does not order cross-sender messages) but is flagged apart.
struct RaceRecord {
  rank_t owner = -1;
  context_t context = kWorldContext;
  tag_t tag = any_tag;
  std::string op = "recv";
  std::vector<rank_t> candidates;
  bool concurrent = true;

  [[nodiscard]] std::string to_string(
      const std::function<std::string(rank_t)>& label = {}) const;
};

class VerifyScheduler final : public Scheduler {
 public:
  /// `decide` is the engine's callback: called once per decision point
  /// (from the monitor thread for fenced decisions, from the owning rank's
  /// thread for immediate ones) and must return one of point.candidates.
  using DecideFn = std::function<rank_t(const DecisionPoint&)>;

  explicit VerifyScheduler(DecideFn decide);
  ~VerifyScheduler() override;

  // Scheduler interface ------------------------------------------------------
  [[nodiscard]] bool verifying() const noexcept override { return true; }
  void bind(Job* job) override;
  void stop() override;
  void rank_started(rank_t world_rank) override;
  void rank_finished(rank_t world_rank) override;
  ClockStamp on_send(rank_t src, rank_t dest, context_t ctx,
                     tag_t tag) override;
  void note_delivery(rank_t dest) override;
  void on_match(rank_t dest, rank_t src, context_t ctx, tag_t tag,
                const ClockStamp& stamp) override;
  void note_blocked(rank_t owner, rank_t waits_on, const char* op,
                    context_t ctx, tag_t tag) override;
  void note_still_blocked(rank_t owner) override;
  void note_unblocked(rank_t owner) override;
  void note_polling(rank_t owner) override;
  rank_t resolve_wildcard(rank_t owner, context_t ctx, tag_t tag,
                          const char* op) override;
  rank_t resolve_immediate(rank_t owner, context_t ctx, tag_t tag,
                           const std::vector<rank_t>& candidates) override;

  /// Every wildcard decision point that had >= 2 candidates, in decision
  /// order.  Read after the job finished (stop() joined the monitor).
  [[nodiscard]] std::vector<RaceRecord> races() const;

 private:
  enum class RunState : std::uint8_t {
    not_started,  ///< thread not yet launched — may do anything
    running,      ///< between hooks — may send at any moment
    blocked,      ///< hard-blocked in a mailbox wait
    held,         ///< parked at a wildcard fence, waiting for a decision
    polling,      ///< took a nonblocking miss — may be spinning
    finished      ///< entry point returned/threw — can never send again
  };

  struct RankState {
    RunState state = RunState::not_started;
    std::uint64_t epoch = 0;       ///< deliveries made to this rank
    std::uint64_t seen_epoch = 0;  ///< epoch examined through (blocked/poll)
    std::uint64_t spins = 0;       ///< consecutive nonblocking misses
    // Held-fence slot; ctx/tag/op double as the blocked wait's pattern for
    // the stuck-state report.
    context_t ctx = kWorldContext;
    tag_t tag = any_tag;
    const char* op = "recv";
    rank_t waits_on = any_source;  ///< blocked wait's awaited rank
    bool has_chosen = false;
    rank_t chosen = any_source;
  };

  /// True when `st` provably cannot initiate a new delivery before the
  /// engine acts.  Requires mutex_.
  [[nodiscard]] static bool quiescent(const RankState& st) noexcept;

  void monitor_loop();

  /// One monitor pass: if a held rank exists and the system is quiescent,
  /// read candidates, decide, release.  Requires nothing; takes mutex_.
  void try_decide();

  /// Format the stuck-state report.  Requires mutex_.
  [[nodiscard]] std::string describe_stuck_locked() const;

  DecideFn decide_;
  Job* job_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< wakes held rank threads
  std::vector<RankState> ranks_;      ///< slot per world rank
  std::vector<std::vector<std::uint64_t>> clocks_;  ///< vector clocks
  std::uint64_t version_ = 0;  ///< bumped on every state/epoch change
  bool stopping_ = false;
  bool stuck_reported_ = false;
  std::vector<RaceRecord> races_;

  std::thread monitor_;
  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
};

}  // namespace minimpi::verify
