// verify.hpp — mph_verify: systematic schedule exploration (stateless
// model checking) for minimpi/MPH jobs.
//
// verify() runs a scenario repeatedly under a VerifyScheduler, exploring
// the tree of wildcard match decisions depth-first with replay-from-
// prefix: each run forces the decisions of an explored prefix and takes
// the first untried alternative at the deepest branch point.  Because the
// independent-channel reduction already collapses everything except
// wildcard source choices (see DESIGN.md §10), exhausting this tree
// covers every reachable matching of the job on the given configuration —
// which is what turns "the five MPH execution modes pass once" into "the
// five modes are verified over their matching space on small configs".
//
// Budgets are explicit and truncation is never silent: a run that stops
// early reports "explored N of >= M schedules" with M a sound lower bound
// on the frontier still open.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/minimpi/verify/trace.hpp"
#include "src/minimpi/verify/verify_scheduler.hpp"

namespace minimpi::verify {

/// The scenario under verification: runs one job with the given options
/// (the engine injects scheduler/seed/checkers) and returns its report.
/// Typically wraps run_mpmd/run_spmd or an MPH harness.
using JobRunner = std::function<JobReport(const JobOptions&)>;

struct VerifyOptions {
  /// Stop after this many schedules (0 = unlimited).  Reported as
  /// schedule_budget_exhausted when hit with branches still open.
  std::uint64_t max_schedules = 10000;

  /// Wall-clock budget for the whole exploration (0 = unlimited).
  std::chrono::milliseconds budget{0};

  /// Job seed for every schedule (must be nonzero so no fresh entropy is
  /// drawn); also recorded in each trace for byte-identical replays.
  std::uint64_t seed = 1;

  /// Base job options.  The engine overwrites `scheduler` and `seed`, and
  /// force-enables the deadlock/type/collective checkers; everything else
  /// (timeouts, fault plan, leak audit) is passed through.
  JobOptions job;

  /// Stop exploring at the first failing schedule (default) or keep going
  /// and collect every distinct failure within budget.
  bool stop_on_failure = true;

  /// Maps world ranks to component names in reports (optional).
  std::function<std::string(rank_t)> label;
};

/// One failing schedule, with the decision trace that reproduces it.
struct ScheduleFailure {
  std::uint64_t schedule_index = 0;  ///< 0-based order of discovery
  std::string reason;                ///< abort/check/failure summary
  Trace trace;

  [[nodiscard]] std::string to_string(
      const std::function<std::string(rank_t)>& label = {}) const;
};

struct VerifyReport {
  std::uint64_t schedules_run = 0;
  /// Sound lower bound on the total schedule count: schedules_run plus
  /// every untried alternative left on the DFS stack at exit.  Equals
  /// schedules_run exactly when complete.
  std::uint64_t frontier_lower_bound = 0;
  std::uint64_t max_decision_depth = 0;  ///< deepest trace seen
  bool complete = false;                 ///< the whole tree was explored
  bool schedule_budget_exhausted = false;
  bool time_budget_exhausted = false;
  /// Nonempty when a prefix replay observed different candidates than the
  /// schedule it was replaying — nondeterminism outside the wildcard
  /// decisions (e.g. unseeded randomness).  Exploration stops on this.
  std::string divergence;
  std::vector<ScheduleFailure> failures;
  std::vector<RaceRecord> races;  ///< distinct wildcard races observed

  /// No failing schedule, no divergence.
  [[nodiscard]] bool ok() const noexcept {
    return failures.empty() && divergence.empty();
  }

  [[nodiscard]] std::string to_string(
      const std::function<std::string(rank_t)>& label = {}) const;
};

/// Explore the scenario's schedule space.  Arms the fresh-entropy ban for
/// the duration (unseeded randomness inside the scenario throws).
[[nodiscard]] VerifyReport verify(const JobRunner& run,
                                  VerifyOptions options = {});

/// Result of replaying one dumped trace.
struct ReplayResult {
  JobReport report;
  Trace observed;    ///< the decisions the replay actually took
  bool diverged = false;
  std::string divergence;
};

/// Re-run the scenario forcing the decisions of `trace` (its seed becomes
/// the job seed).  A faithful replay reproduces the recorded failure.
[[nodiscard]] ReplayResult replay(const JobRunner& run, const Trace& trace,
                                  JobOptions job = {});

}  // namespace minimpi::verify
