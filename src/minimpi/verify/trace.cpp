#include "src/minimpi/verify/trace.hpp"

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string_view>

#include "src/minimpi/error.hpp"

namespace minimpi::verify {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string Trace::to_json() const {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"seed\": " << seed
      << ",\n  \"decisions\": [";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const Decision& d = decisions[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"step\": " << i << ", \"rank\": " << d.rank << ", \"op\": \""
        << d.op << "\", \"context\": " << d.context << ", \"tag\": " << d.tag
        << ", \"chose\": " << d.chose << ", \"candidates\": [";
    for (std::size_t c = 0; c < d.candidates.size(); ++c) {
      if (c != 0) out << ", ";
      out << d.candidates[c];
    }
    out << "], \"immediate\": " << (d.immediate ? "true" : "false") << "}";
  }
  out << (decisions.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Parser — a recursive-descent reader for exactly the JSON subset the
// writer produces (objects, arrays, strings without escapes, integers,
// booleans), tolerant of whitespace and key order.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Trace parse() {
    Trace trace;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "seed") {
        trace.seed = static_cast<std::uint64_t>(parse_int());
      } else if (key == "version") {
        const std::int64_t version = parse_int();
        if (version != 1) {
          fail("unsupported trace version " + std::to_string(version));
        }
      } else if (key == "decisions") {
        trace.decisions = parse_decisions();
      } else {
        fail("unknown key \"" + key + "\"");
      }
    }
    expect('}');
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after trace");
    return trace;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(Errc::invalid_argument,
                "trace parse error at offset " + std::to_string(pos_) + ": " +
                    why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escape sequences are not supported");
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    std::string out(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] std::int64_t parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected an integer");
    }
    std::int64_t value = 0;
    const bool negative = text_[start] == '-';
    for (std::size_t i = start + (negative ? 1 : 0); i < pos_; ++i) {
      value = value * 10 + (text_[i] - '0');
    }
    return negative ? -value : value;
  }

  [[nodiscard]] bool parse_bool() {
    skip_ws();
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail("expected true/false");
  }

  [[nodiscard]] std::vector<rank_t> parse_rank_array() {
    std::vector<rank_t> out;
    expect('[');
    while (!peek_is(']')) {
      if (!out.empty()) expect(',');
      out.push_back(static_cast<rank_t>(parse_int()));
    }
    expect(']');
    return out;
  }

  [[nodiscard]] Decision parse_decision() {
    Decision d;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "step") {
        (void)parse_int();  // informational; order in the array is binding
      } else if (key == "rank") {
        d.rank = static_cast<rank_t>(parse_int());
      } else if (key == "op") {
        d.op = parse_string();
      } else if (key == "context") {
        d.context = static_cast<context_t>(parse_int());
      } else if (key == "tag") {
        d.tag = static_cast<tag_t>(parse_int());
      } else if (key == "chose") {
        d.chose = static_cast<rank_t>(parse_int());
      } else if (key == "candidates") {
        d.candidates = parse_rank_array();
      } else if (key == "immediate") {
        d.immediate = parse_bool();
      } else {
        fail("unknown decision key \"" + key + "\"");
      }
    }
    expect('}');
    return d;
  }

  [[nodiscard]] std::vector<Decision> parse_decisions() {
    std::vector<Decision> out;
    expect('[');
    while (!peek_is(']')) {
      if (!out.empty()) expect(',');
      out.push_back(parse_decision());
    }
    expect(']');
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Trace Trace::from_json(const std::string& text) {
  return Parser(text).parse();
}

// ---------------------------------------------------------------------------
// Human-readable rendering
// ---------------------------------------------------------------------------

std::string Trace::to_string(
    const std::function<std::string(rank_t)>& label) const {
  const auto name = [&](rank_t r) {
    std::string who = label ? label(r) : std::string{};
    if (who.empty()) who = "rank";
    return who + "[" + std::to_string(r) + "]";
  };
  std::ostringstream out;
  out << "decision trace (" << decisions.size() << " step(s), seed " << seed
      << ")";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const Decision& d = decisions[i];
    out << "\n  #" << i << " " << name(d.rank) << " " << d.op << " <- "
        << name(d.chose) << " (context=" << d.context << ", tag=";
    if (d.tag == any_tag) {
      out << "*";
    } else {
      out << d.tag;
    }
    out << ") candidates={";
    for (std::size_t c = 0; c < d.candidates.size(); ++c) {
      if (c != 0) out << ",";
      out << d.candidates[c];
    }
    out << "}";
    if (d.immediate) out << " [immediate]";
  }
  return out.str();
}

}  // namespace minimpi::verify
