#include "src/minimpi/verify/verify_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "src/minimpi/job.hpp"
#include "src/minimpi/mailbox.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi::verify {

namespace {

/// a happened-before-or-equals b, component-wise.
bool clock_leq(const std::vector<std::uint64_t>& a,
               const std::vector<std::uint64_t>& b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
  }
  for (std::size_t i = n; i < a.size(); ++i) {
    if (a[i] > 0) return false;
  }
  return true;
}

/// True when at least one candidate pair is causally unordered.
bool any_concurrent(
    const std::vector<Mailbox::WildcardCandidate>& candidates) noexcept {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const ClockStamp& a = candidates[i].vc;
      const ClockStamp& b = candidates[j].vc;
      if (a == nullptr || b == nullptr) return true;  // unknown = assume race
      if (!clock_leq(*a, *b) && !clock_leq(*b, *a)) return true;
    }
  }
  return false;
}

}  // namespace

std::string RaceRecord::to_string(
    const std::function<std::string(rank_t)>& label) const {
  const auto name = [&](rank_t r) {
    std::string who = label ? label(r) : std::string{};
    if (who.empty()) who = "rank";
    return who + "[" + std::to_string(r) + "]";
  };
  std::ostringstream out;
  out << "wildcard race: " << name(owner) << " " << op
      << "(ANY_SOURCE) on (context=" << context << ", tag=";
  if (tag == any_tag) {
    out << "*";
  } else {
    out << tag;
  }
  out << ") matchable by {";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i != 0) out << ", ";
    out << name(candidates[i]);
  }
  out << "} — senders are "
      << (concurrent ? "causally concurrent" : "causally ordered");
  return out.str();
}

VerifyScheduler::VerifyScheduler(DecideFn decide)
    : decide_(std::move(decide)) {}

VerifyScheduler::~VerifyScheduler() { stop(); }

void VerifyScheduler::bind(Job* job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    const auto n = static_cast<std::size_t>(job->world_size());
    ranks_.assign(n, RankState{});
    clocks_.assign(n, std::vector<std::uint64_t>(n, 0));
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void VerifyScheduler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void VerifyScheduler::rank_started(rank_t world_rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (world_rank < 0 || world_rank >= static_cast<rank_t>(ranks_.size())) {
    return;
  }
  ranks_[static_cast<std::size_t>(world_rank)].state = RunState::running;
  ++version_;
}

void VerifyScheduler::rank_finished(rank_t world_rank) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (world_rank < 0 || world_rank >= static_cast<rank_t>(ranks_.size())) {
      return;
    }
    ranks_[static_cast<std::size_t>(world_rank)].state = RunState::finished;
    ++version_;
  }
  // A finished rank can never send again: quiescence may now hold.
  monitor_cv_.notify_all();
}

ClockStamp VerifyScheduler::on_send(rank_t src, rank_t dest, context_t ctx,
                                    tag_t tag) {
  (void)dest;
  (void)ctx;
  (void)tag;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (src < 0 || src >= static_cast<rank_t>(ranks_.size())) return nullptr;
  const auto s = static_cast<std::size_t>(src);
  // This is the sender's own thread: if it was marked polling it is now
  // visibly progressing.
  if (ranks_[s].state == RunState::polling) {
    ranks_[s].state = RunState::running;
    ranks_[s].spins = 0;
  }
  std::vector<std::uint64_t>& clock = clocks_[s];
  clock[s] += 1;
  ++version_;
  return std::make_shared<const std::vector<std::uint64_t>>(clock);
}

void VerifyScheduler::note_delivery(rank_t dest) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dest < 0 || dest >= static_cast<rank_t>(ranks_.size())) return;
  ranks_[static_cast<std::size_t>(dest)].epoch += 1;
  ++version_;
}

void VerifyScheduler::on_match(rank_t dest, rank_t src, context_t ctx,
                               tag_t tag, const ClockStamp& stamp) {
  (void)src;
  (void)ctx;
  (void)tag;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dest < 0 || dest >= static_cast<rank_t>(ranks_.size())) return;
  const auto d = static_cast<std::size_t>(dest);
  std::vector<std::uint64_t>& clock = clocks_[d];
  if (stamp != nullptr) {
    const std::size_t n = std::min(clock.size(), stamp->size());
    for (std::size_t i = 0; i < n; ++i) {
      clock[i] = std::max(clock[i], (*stamp)[i]);
    }
  }
  clock[d] += 1;
  // NB: no run-state change — on_match may run on the *sender's* thread
  // (a delivery completing a posted receive); only the owner's own thread
  // moves its state.
}

void VerifyScheduler::note_blocked(rank_t owner, rank_t waits_on,
                                   const char* op, context_t ctx, tag_t tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (owner < 0 || owner >= static_cast<rank_t>(ranks_.size())) return;
  RankState& st = ranks_[static_cast<std::size_t>(owner)];
  st.state = RunState::blocked;
  st.waits_on = waits_on;
  st.op = op;
  st.ctx = ctx;
  st.tag = tag;
  st.spins = 0;
  // Same critical section as the failed match check (caller holds the
  // owner's mailbox mutex), so seen_epoch == epoch proves the owner has
  // examined every delivery so far.
  st.seen_epoch = st.epoch;
  ++version_;
}

void VerifyScheduler::note_still_blocked(rank_t owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (owner < 0 || owner >= static_cast<rank_t>(ranks_.size())) return;
  RankState& st = ranks_[static_cast<std::size_t>(owner)];
  if (st.state == RunState::blocked) st.seen_epoch = st.epoch;
  ++version_;
}

void VerifyScheduler::note_unblocked(rank_t owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (owner < 0 || owner >= static_cast<rank_t>(ranks_.size())) return;
  RankState& st = ranks_[static_cast<std::size_t>(owner)];
  st.state = RunState::running;
  st.spins = 0;
  ++version_;
}

void VerifyScheduler::note_polling(rank_t owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (owner < 0 || owner >= static_cast<rank_t>(ranks_.size())) return;
  RankState& st = ranks_[static_cast<std::size_t>(owner)];
  st.spins = st.state == RunState::polling ? st.spins + 1 : 1;
  st.state = RunState::polling;
  st.seen_epoch = st.epoch;
  ++version_;
}

rank_t VerifyScheduler::resolve_wildcard(rank_t owner, context_t ctx,
                                         tag_t tag, const char* op) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (owner < 0 || owner >= static_cast<rank_t>(ranks_.size())) {
    return any_source;
  }
  RankState& st = ranks_[static_cast<std::size_t>(owner)];
  st.state = RunState::held;
  st.ctx = ctx;
  st.tag = tag;
  st.op = op;
  st.waits_on = any_source;
  st.spins = 0;
  st.has_chosen = false;
  ++version_;
  monitor_cv_.notify_all();
  cv_.wait(lock, [&] {
    return st.has_chosen || stopping_ ||
           (job_ != nullptr && job_->aborted());
  });
  const rank_t out = st.has_chosen ? st.chosen : any_source;
  st.has_chosen = false;
  st.state = RunState::running;
  ++version_;
  return out;
}

rank_t VerifyScheduler::resolve_immediate(
    rank_t owner, context_t ctx, tag_t tag,
    const std::vector<rank_t>& candidates) {
  DecisionPoint point;
  point.owner = owner;
  point.context = ctx;
  point.tag = tag;
  point.op = "iprobe";
  point.candidates = candidates;
  point.immediate = true;
  {
    // Caller holds the owner's mailbox mutex; mailbox -> scheduler is the
    // sanctioned order.  Candidate clocks are unavailable here (reading
    // them would re-enter the same mailbox), so the race is conservatively
    // flagged concurrent.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (candidates.size() >= 2) {
      races_.push_back(
          RaceRecord{owner, ctx, tag, "iprobe", candidates, true});
    }
  }
  const rank_t chosen = decide_ ? decide_(point) : candidates.front();
  if (std::find(candidates.begin(), candidates.end(), chosen) ==
      candidates.end()) {
    return candidates.front();
  }
  return chosen;
}

std::vector<RaceRecord> VerifyScheduler::races() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return races_;
}

bool VerifyScheduler::quiescent(const RankState& st) noexcept {
  switch (st.state) {
    case RunState::finished:
    case RunState::held:
      return true;
    case RunState::blocked:
      return st.seen_epoch == st.epoch;
    case RunState::polling:
      // A spinning rank that has examined every delivery cannot match; but
      // it is still free to send between probes, so polling ranks count
      // for *fence* quiescence only after repeated misses, and never for
      // the stuck-state proof (see try_decide).
      return st.spins >= 2 && st.seen_epoch == st.epoch;
    case RunState::not_started:
    case RunState::running:
      return false;
  }
  return false;
}

std::string VerifyScheduler::describe_stuck_locked() const {
  std::ostringstream out;
  out << "schedule deadlock: no rank can make progress";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& st = ranks_[r];
    std::string label =
        job_ != nullptr ? job_->rank_label(static_cast<rank_t>(r)) : "";
    if (label.empty()) label = "rank";
    out << "; " << label << "[" << r << "] ";
    switch (st.state) {
      case RunState::finished:
        out << "finished";
        break;
      case RunState::held:
        out << "held at wildcard " << st.op << "(ANY_SOURCE) (context="
            << st.ctx << ", tag=" << st.tag << ") with no matchable sender";
        break;
      case RunState::blocked:
        out << "blocked in " << st.op << "<-" << st.waits_on << " (context="
            << st.ctx << ", tag=" << st.tag << ")";
        break;
      case RunState::polling:
        out << "polling";
        break;
      case RunState::not_started:
      case RunState::running:
        out << "running";
        break;
    }
  }
  return out.str();
}

void VerifyScheduler::monitor_loop() {
  mph::util::set_thread_label("mph_verify monitor");
  for (;;) {
    {
      std::unique_lock<std::mutex> wait_lock(monitor_mutex_);
      monitor_cv_.wait_for(wait_lock, std::chrono::microseconds(200));
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    try_decide();
  }
}

void VerifyScheduler::try_decide() {
  struct HeldQuery {
    rank_t owner;
    context_t ctx;
    tag_t tag;
    const char* op;
  };
  std::vector<HeldQuery> held;
  bool any_polling = false;
  std::uint64_t version_snapshot = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || job_ == nullptr) return;
    if (job_->aborted()) {
      cv_.notify_all();  // release any held rank into its abort unwind
      return;
    }
    bool all_quiescent = true;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const RankState& st = ranks_[r];
      if (st.state == RunState::held && !st.has_chosen) {
        // A held rank whose failure domain died must unwind, not wait for
        // a decision that will never come (its peers are gone).
        const int domain = job_->domain_of(static_cast<rank_t>(r));
        if (domain >= 0 && job_->domain_aborted(domain)) {
          ranks_[r].has_chosen = true;
          ranks_[r].chosen = any_source;
          ++version_;
          cv_.notify_all();
          return;
        }
        held.push_back(HeldQuery{static_cast<rank_t>(r), st.ctx, st.tag,
                                 st.op});
      }
      if (!quiescent(st)) all_quiescent = false;
      if (st.state == RunState::polling) any_polling = true;
    }
    if (held.empty() || !all_quiescent) return;
    version_snapshot = version_;
  }

  // Read candidate sets with no scheduler lock held (lock order: a mailbox
  // mutex may be taken before the scheduler's, never after).
  std::vector<std::vector<Mailbox::WildcardCandidate>> candidates;
  candidates.reserve(held.size());
  for (const HeldQuery& h : held) {
    candidates.push_back(job_->mailbox(h.owner).wildcard_candidates(h.ctx,
                                                                    h.tag));
  }

  bool stuck = false;
  rank_t stuck_culprit = -1;
  std::string stuck_label;
  std::string stuck_report;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || version_ != version_snapshot) return;  // world moved on
    std::size_t pick = held.size();
    for (std::size_t i = 0; i < held.size(); ++i) {
      if (!candidates[i].empty()) {
        pick = i;
        break;
      }
    }
    if (pick == held.size()) {
      // Every held rank has an empty candidate set while everyone else is
      // hard-blocked or finished: no future send can ever happen.  A
      // polling rank breaks the proof (it may send between probes), so
      // leave those runs to the recv timeout.
      if (any_polling || stuck_reported_) return;
      stuck_reported_ = true;
      stuck = true;
      stuck_culprit = held.front().owner;
      stuck_label = job_->rank_label(stuck_culprit);
      stuck_report = describe_stuck_locked();
    } else {
      const HeldQuery& h = held[pick];
      DecisionPoint point;
      point.owner = h.owner;
      point.context = h.ctx;
      point.tag = h.tag;
      point.op = h.op;
      point.immediate = false;
      for (const Mailbox::WildcardCandidate& c : candidates[pick]) {
        point.candidates.push_back(c.src);
      }
      if (point.candidates.size() >= 2) {
        races_.push_back(RaceRecord{h.owner, h.ctx, h.tag, h.op,
                                    point.candidates,
                                    any_concurrent(candidates[pick])});
      }
      rank_t chosen =
          decide_ ? decide_(point) : point.candidates.front();
      if (std::find(point.candidates.begin(), point.candidates.end(),
                    chosen) == point.candidates.end()) {
        chosen = point.candidates.front();
      }
      RankState& st = ranks_[static_cast<std::size_t>(h.owner)];
      st.has_chosen = true;
      st.chosen = chosen;
      ++version_;
      cv_.notify_all();
    }
  }
  if (stuck) {
    // Abort with NO scheduler lock held: Job::abort wakes every mailbox,
    // and mailbox mutexes must never be acquired under the scheduler's.
    MPH_DIAG_LOG(error) << "mph_verify: " << stuck_report;
    job_->abort(AbortInfo{stuck_culprit, stuck_label, "schedule-deadlock",
                          stuck_report});
    cv_.notify_all();
  }
}

}  // namespace minimpi::verify
