#include "src/minimpi/verify/verify.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "src/util/rng.hpp"

namespace minimpi::verify {

namespace {

/// DFS stack entry: one fenced decision of the current prefix, plus which
/// alternative of its candidate set is (or will be) explored.
struct Frame {
  Decision decision;            ///< as first observed (candidates binding)
  std::size_t chosen_index = 0; ///< index into decision.candidates
};

bool contains(const std::vector<rank_t>& xs, rank_t x) noexcept {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

/// Does this report describe a failing schedule?
bool failing(const JobReport& report) {
  if (!report.ok) return true;
  if (report.check.has_value()) {
    const CheckReport& c = *report.check;
    if (!c.deadlocks.empty() || !c.type_mismatches.empty() ||
        !c.collective_mismatches.empty()) {
      return true;
    }
  }
  return false;
}

std::string failure_reason(const JobReport& report) {
  if (report.abort.has_value()) return report.abort->to_string();
  for (const RankFailure& f : report.failures) {
    if (!f.operation.empty()) {
      return "rank " + std::to_string(f.world_rank) + " (" + f.component +
             ") failed in " + f.operation + ": " + f.what;
    }
  }
  if (!report.abort_reason.empty()) return report.abort_reason;
  if (report.check.has_value() && !report.check->clean()) {
    return report.check->to_string();
  }
  if (!report.failures.empty()) return report.failures.front().what;
  return "job failed";
}

std::string race_key(const RaceRecord& race) {
  std::ostringstream key;
  key << race.owner << "|" << race.context << "|" << race.tag << "|"
      << race.op << "|";
  for (const rank_t c : race.candidates) key << c << ",";
  return key.str();
}

JobOptions with_verify_defaults(JobOptions job, std::uint64_t seed,
                                std::shared_ptr<Scheduler> scheduler) {
  job.scheduler = std::move(scheduler);
  job.seed = seed != 0 ? seed : 1;
  // mpicheck is part of the verification oracle: every schedule runs with
  // the deadlock/type/collective checkers armed (the leak audit stays as
  // the caller configured it).
  job.check.deadlock = true;
  job.check.type_matching = true;
  job.check.collectives = true;
  return job;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

std::string ScheduleFailure::to_string(
    const std::function<std::string(rank_t)>& label) const {
  std::ostringstream out;
  out << "schedule #" << schedule_index << " fails: " << reason << "\n"
      << trace.to_string(label);
  return out.str();
}

std::string VerifyReport::to_string(
    const std::function<std::string(rank_t)>& label) const {
  std::ostringstream out;
  out << "mph_verify: explored " << schedules_run;
  if (complete) {
    out << " schedule(s), complete (max decision depth " << max_decision_depth
        << ")";
  } else {
    out << " of >= " << frontier_lower_bound << " schedule(s)";
    if (schedule_budget_exhausted) out << " [schedule budget exhausted]";
    if (time_budget_exhausted) out << " [time budget exhausted]";
    if (!schedule_budget_exhausted && !time_budget_exhausted) {
      out << " [stopped early]";
    }
  }
  if (!divergence.empty()) out << "\ndivergence: " << divergence;
  if (races.empty()) {
    out << "\nwildcard races: none";
  } else {
    out << "\nwildcard races: " << races.size() << " distinct";
    for (const RaceRecord& race : races) {
      out << "\n  " << race.to_string(label);
    }
  }
  if (failures.empty()) {
    out << "\nfailures: none";
  } else {
    out << "\nfailures: " << failures.size();
    for (const ScheduleFailure& f : failures) {
      out << "\n" << f.to_string(label);
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------------

VerifyReport verify(const JobRunner& run, VerifyOptions options) {
  // All randomness must flow through the recorded seed: any code path that
  // asks the OS for fresh entropy during exploration throws instead of
  // silently breaking replays.
  const mph::util::ScopedEntropyBan entropy_ban;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t seed = options.seed != 0 ? options.seed : 1;

  VerifyReport out;
  std::vector<Frame> stack;
  std::set<std::string> seen_races;
  bool pending_alternative = false;  // backtracked but never ran it

  for (;;) {
    // Per-schedule decision state, fed by the scheduler's monitor thread.
    std::mutex decision_mutex;
    std::size_t cursor = 0;
    Trace trace;
    trace.seed = seed;
    bool diverged = false;
    std::string divergence;

    const auto decide = [&](const DecisionPoint& point) -> rank_t {
      const std::lock_guard<std::mutex> lock(decision_mutex);
      rank_t chosen = point.candidates.front();
      if (!point.immediate) {
        const std::size_t depth = cursor++;
        if (depth < stack.size()) {
          // Replaying the explored prefix: force the frame's alternative.
          Frame& frame = stack[depth];
          const rank_t want = frame.decision.candidates[frame.chosen_index];
          if (frame.decision.candidates != point.candidates &&
              divergence.empty()) {
            diverged = true;
            std::ostringstream note;
            note << "decision #" << depth << " saw different candidates on "
                 << "replay (rank " << point.owner << ", context "
                 << point.context << ", tag " << point.tag
                 << ") — nondeterminism outside the wildcard decisions";
            divergence = note.str();
          }
          if (contains(point.candidates, want)) {
            chosen = want;
          } else if (divergence.empty()) {
            diverged = true;
            divergence = "decision #" + std::to_string(depth) +
                         ": forced sender " + std::to_string(want) +
                         " is no longer a candidate on replay";
          }
        } else {
          // New territory: take the first alternative, open a frame.
          Frame frame;
          frame.decision = Decision{point.owner, point.op, point.context,
                                    point.tag, chosen, point.candidates,
                                    false};
          frame.chosen_index = 0;
          stack.push_back(std::move(frame));
        }
      }
      trace.decisions.push_back(Decision{point.owner, point.op, point.context,
                                         point.tag, chosen, point.candidates,
                                         point.immediate});
      return chosen;
    };

    auto scheduler = std::make_shared<VerifyScheduler>(decide);
    const JobReport report =
        run(with_verify_defaults(options.job, seed, scheduler));
    pending_alternative = false;
    out.schedules_run += 1;
    out.max_decision_depth =
        std::max<std::uint64_t>(out.max_decision_depth,
                                trace.decisions.size());
    for (const RaceRecord& race : scheduler->races()) {
      if (seen_races.insert(race_key(race)).second) out.races.push_back(race);
    }
    scheduler->stop();

    if (diverged) {
      out.divergence = divergence;
      break;
    }
    if (failing(report)) {
      out.failures.push_back(ScheduleFailure{out.schedules_run - 1,
                                             failure_reason(report), trace});
      if (options.stop_on_failure) break;
    }

    // Backtrack: drop exhausted frames, advance the deepest open one.
    while (!stack.empty() &&
           stack.back().chosen_index + 1 >=
               stack.back().decision.candidates.size()) {
      stack.pop_back();
    }
    if (stack.empty()) {
      out.complete = true;
      break;
    }
    stack.back().chosen_index += 1;
    pending_alternative = true;

    // Budget gates — checked with a branch still pending so the frontier
    // accounting below can report it as unexplored, never silently drop it.
    if (options.max_schedules != 0 &&
        out.schedules_run >= options.max_schedules) {
      out.schedule_budget_exhausted = true;
      break;
    }
    if (options.budget.count() > 0 &&
        std::chrono::steady_clock::now() - start >= options.budget) {
      out.time_budget_exhausted = true;
      break;
    }
  }

  std::uint64_t open = pending_alternative ? 1 : 0;
  for (const Frame& frame : stack) {
    open += frame.decision.candidates.size() - 1 - frame.chosen_index;
  }
  out.frontier_lower_bound = out.schedules_run + open;
  return out;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

ReplayResult replay(const JobRunner& run, const Trace& trace,
                    JobOptions job) {
  const mph::util::ScopedEntropyBan entropy_ban;
  std::vector<Decision> forced;
  for (const Decision& d : trace.decisions) {
    if (!d.immediate) forced.push_back(d);
  }

  ReplayResult result;
  result.observed.seed = trace.seed != 0 ? trace.seed : 1;
  std::mutex decision_mutex;
  std::size_t cursor = 0;

  const auto note_divergence = [&](std::string why) {
    result.diverged = true;
    if (result.divergence.empty()) result.divergence = std::move(why);
  };

  const auto decide = [&](const DecisionPoint& point) -> rank_t {
    const std::lock_guard<std::mutex> lock(decision_mutex);
    rank_t chosen = point.candidates.front();
    if (!point.immediate) {
      if (cursor < forced.size()) {
        const Decision& want = forced[cursor];
        if (want.candidates != point.candidates) {
          note_divergence("decision #" + std::to_string(cursor) +
                          " saw different candidates than the trace");
        }
        if (contains(point.candidates, want.chose)) {
          chosen = want.chose;
        } else {
          note_divergence("decision #" + std::to_string(cursor) +
                          ": recorded sender " + std::to_string(want.chose) +
                          " is not a candidate");
        }
      } else {
        note_divergence("run makes more decisions than the trace records");
      }
      ++cursor;
    }
    result.observed.decisions.push_back(
        Decision{point.owner, point.op, point.context, point.tag, chosen,
                 point.candidates, point.immediate});
    return chosen;
  };

  auto scheduler = std::make_shared<VerifyScheduler>(decide);
  result.report = run(with_verify_defaults(
      std::move(job), trace.seed != 0 ? trace.seed : 1, scheduler));
  scheduler->stop();
  if (!result.diverged && cursor < forced.size()) {
    note_divergence("run ended after " + std::to_string(cursor) + " of " +
                    std::to_string(forced.size()) + " recorded decisions");
  }
  return result;
}

}  // namespace minimpi::verify
