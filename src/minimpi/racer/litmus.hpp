// litmus.hpp — the mph_racer litmus registry.
//
// A litmus is a small, closed concurrent program whose every execution the
// engine can enumerate at pinned bounds: classic memory-model shapes
// (store buffering, message passing, coherence) that validate the checker
// itself, the repo's real lock-free structures (TraceRing, MetricsRegistry,
// the mailbox/job abort protocol) checked against their documented
// invariants, and deliberately seeded mutants the checker must catch.
//
// Every case carries pinned default bounds (RacerOptions) chosen so the
// exploration is exhaustive — `RacerReport::complete` is part of the CI
// gate, not just "no failure found".  Cases marked `expect_failure` encode
// known bugs: the gate requires the engine to FIND the failure (and the
// produced schedule to replay to the identical failure).
//
// Bodies are re-entrant: all state (including the structures under test)
// lives on the body's stack, so the engine can run the body once per
// explored execution.  The same bodies double as native stress loops when
// no engine is active (run_threads falls back to plain std::thread) — the
// tsan contention tests reuse them that way.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/racer/engine.hpp"

namespace minimpi::racer {

/// One registered litmus program.
struct LitmusCase {
  const char* name;     ///< stable id used by the CLI / CI / schedules
  const char* summary;  ///< one line for `mph_racer list`
  bool expect_failure;  ///< true: the checker must find a violation
  RacerOptions bounds;  ///< pinned defaults (exhaustive at these bounds)
  void (*body)();       ///< re-entrant program (state on its own stack)
};

/// All registered cases, in documentation order (classics, structures,
/// mutants).
[[nodiscard]] const std::vector<LitmusCase>& litmus_cases();

/// The case named `name`, or nullptr.
[[nodiscard]] const LitmusCase* find_litmus(std::string_view name);

/// Explore `c` with its pinned bounds (or `override_bounds` when non-null).
[[nodiscard]] RacerReport run_litmus(const LitmusCase& c,
                                     const RacerOptions* override_bounds =
                                         nullptr);

/// Replay `c` against a decision schedule (e.g. parsed from a dumped
/// counterexample trace).
[[nodiscard]] RacerReport replay_litmus(const LitmusCase& c,
                                        const std::vector<Decision>& schedule,
                                        const RacerOptions* override_bounds =
                                            nullptr);

/// Did the report meet the case's expectation?  Pass cases need ok();
/// expect_failure cases need the failure found AND the exploration not
/// voided by divergence.
[[nodiscard]] bool litmus_verdict(const LitmusCase& c, const RacerReport& r);

}  // namespace minimpi::racer
