#include "src/minimpi/racer/litmus.hpp"

#include <cstdint>

#include "src/minimpi/metrics.hpp"
#include "src/minimpi/trace.hpp"

namespace minimpi::racer {

namespace {

// ---------------------------------------------------------------------------
// Classics — validate the checker against the textbook shapes.
// ---------------------------------------------------------------------------

/// Store buffering, relaxed: all four outcomes (including r1 == r2 == 0)
/// are allowed, so there is nothing to assert per execution — the case
/// exists so `--require-complete` proves the engine enumerates the full
/// space (tests/racer/test_engine.cpp additionally checks that all four
/// outcomes really occur).
void sb_relaxed() {
  mph::atomic<int> x{0};
  mph::atomic<int> y{0};
  name_location(&x, "x");
  name_location(&y, "y");
  int r1 = -1;
  int r2 = -1;
  run_threads({[&] {
                 x.store(1, std::memory_order_relaxed);
                 r1 = y.load(std::memory_order_relaxed);
               },
               [&] {
                 y.store(1, std::memory_order_relaxed);
                 r2 = x.load(std::memory_order_relaxed);
               }});
  RACER_CHECK((r1 == 0 || r1 == 1) && (r2 == 0 || r2 == 1),
              "sb_relaxed: impossible value");
}

/// Store buffering, seq_cst: the r1 == r2 == 0 outcome is forbidden —
/// some total order over the four operations puts one store first.
void sb_seq_cst() {
  mph::atomic<int> x{0};
  mph::atomic<int> y{0};
  name_location(&x, "x");
  name_location(&y, "y");
  int r1 = -1;
  int r2 = -1;
  run_threads({[&] {
                 x.store(1);
                 r1 = y.load();
               },
               [&] {
                 y.store(1);
                 r2 = x.load();
               }});
  RACER_CHECK(r1 == 1 || r2 == 1, "sb_seq_cst: both threads read 0");
}

/// Message passing, release/acquire: observing the flag implies observing
/// the data — the shape every publish protocol in src/minimpi relies on.
void mp_rel_acq() {
  mph::atomic<int> data{0};
  mph::atomic<int> flag{0};
  name_location(&data, "data");
  name_location(&flag, "flag");
  run_threads({[&] {
                 data.store(42, std::memory_order_relaxed);
                 flag.store(1, std::memory_order_release);
               },
               [&] {
                 if (flag.load(std::memory_order_acquire) == 1) {
                   RACER_CHECK(data.load(std::memory_order_relaxed) == 42,
                               "mp_rel_acq: stale data behind the flag");
                 }
               }});
}

/// Message passing with a relaxed flag store: the bug mp_rel_acq fixes.
/// The checker must find the stale read (expect_failure).
void mp_relaxed() {
  mph::atomic<int> data{0};
  mph::atomic<int> flag{0};
  name_location(&data, "data");
  name_location(&flag, "flag");
  run_threads({[&] {
                 data.store(42, std::memory_order_relaxed);
                 flag.store(1, std::memory_order_relaxed);  // bug: no release
               },
               [&] {
                 if (flag.load(std::memory_order_acquire) == 1) {
                   RACER_CHECK(data.load(std::memory_order_relaxed) == 42,
                               "mp_relaxed: stale data behind the flag");
                 }
               }});
}

/// Coherence: per-location total order means re-reads never go backward,
/// even fully relaxed.
void coherence() {
  mph::atomic<int> x{0};
  name_location(&x, "x");
  run_threads({[&] {
                 x.store(1, std::memory_order_relaxed);
                 x.store(2, std::memory_order_relaxed);
               },
               [&] {
                 const int a = x.load(std::memory_order_relaxed);
                 const int b = x.load(std::memory_order_relaxed);
                 RACER_CHECK(b >= a, "coherence: re-read went backward");
               }});
}

// ---------------------------------------------------------------------------
// Structures — the repo's real lock-free code, compiled under MPH_RACER.
// ---------------------------------------------------------------------------

/// A ring event is internally consistent when every payload field carries
/// the same encoded value — a torn (mixed-writer) event cannot satisfy
/// this because the two writers encode different values everywhere.
void check_ring_event(const TraceEvent& ev, const char* litmus) {
  RACER_CHECK(ev.t_start_ns == ev.t_end_ns && ev.t_start_ns == ev.bytes,
              "torn ring event: payload fields from different writers");
  (void)litmus;
}

TraceEvent ring_event(std::uint64_t value, const char* name) {
  TraceEvent ev;
  ev.t_start_ns = value;
  ev.t_end_ns = value;
  ev.bytes = value;
  ev.op = TraceOp::send;
  ev.span = false;
  ev.name = name;
  return ev;
}

/// Single producer, concurrent snapshot: the reader only ever sees whole
/// events, oldest first, and the post-join drain is exact.
void trace_ring_spsc() {
  TraceRing ring(2);
  TraceRing::Snapshot live;
  run_threads({[&] {
                 ring.record(ring_event(1, "a"));
                 ring.record(ring_event(2, "b"));
               },
               [&] { live = ring.snapshot(); }});
  for (const TraceEvent& ev : live.events) {
    check_ring_event(ev, "trace_ring_spsc");
    RACER_CHECK(ev.bytes == 1 || ev.bytes == 2,
                "trace_ring_spsc: unknown event value");
  }
  if (live.events.size() == 2) {
    RACER_CHECK(live.events[0].bytes == 1 && live.events[1].bytes == 2,
                "trace_ring_spsc: events out of claim order");
  }
  const TraceRing::Snapshot final = ring.snapshot();
  RACER_CHECK(final.events.size() == 2 && final.dropped == 0,
              "trace_ring_spsc: quiescent drain must be exact");
}

/// The lapping case the release/acquire field orderings exist for: a
/// capacity-1 ring where the second record overwrites the first while a
/// reader snapshots.  The reader may drop the slot, or return event A or
/// event B whole — never a mix (see trace.hpp's memory-model contract;
/// mutant_relaxed_publish is the same shape with the bug re-seeded).
void trace_ring_lap() {
  TraceRing ring(1);
  TraceRing::Snapshot live;
  run_threads({[&] {
                 ring.record(ring_event(1, "a"));
                 ring.record(ring_event(2, "b"));  // laps the first event
               },
               [&] { live = ring.snapshot(); }});
  for (const TraceEvent& ev : live.events) {
    check_ring_event(ev, "trace_ring_lap");
  }
  const TraceRing::Snapshot final = ring.snapshot();
  RACER_CHECK(final.dropped == 1 && final.events.size() == 1 &&
                  final.events[0].bytes == 2,
              "trace_ring_lap: quiescent drain must keep only the lap");
}

/// Two producers (the deliver path records on the receiver's ring from
/// the sender's thread) racing the claim fetch_add: claims must be
/// distinct, so the quiescent drain holds both events, one of each value.
void trace_ring_mpsc() {
  TraceRing ring(2);
  run_threads({[&] { ring.record(ring_event(1, "a")); },
               [&] { ring.record(ring_event(2, "b")); }});
  RACER_CHECK(ring.recorded() == 2, "trace_ring_mpsc: lost a claim");
  const TraceRing::Snapshot final = ring.snapshot();
  RACER_CHECK(final.events.size() == 2 && final.dropped == 0,
              "trace_ring_mpsc: quiescent drain must hold both events");
  for (const TraceEvent& ev : final.events) {
    check_ring_event(ev, "trace_ring_mpsc");
  }
  RACER_CHECK(final.events[0].bytes + final.events[1].bytes == 3,
              "trace_ring_mpsc: duplicate or missing event value");
}

/// The histogram contract from metrics.hpp: a live read_rank never sees
/// count running ahead of the buckets or the sum (no phantom events).
void metrics_histogram() {
  MetricsRegistry reg(1);
  RankMetrics live;
  run_threads({[&] { reg.on_match(0, 5); },
               [&] { live = reg.read_rank(0); }});
  std::uint64_t buckets_total = 0;
  for (const std::uint64_t b : live.match_latency.buckets) buckets_total += b;
  RACER_CHECK(buckets_total >= live.match_latency.count,
              "metrics_histogram: phantom event (count ahead of buckets)");
  RACER_CHECK(live.match_latency.sum >= 5 * live.match_latency.count,
              "metrics_histogram: phantom event (count ahead of sum)");
  const RankMetrics final = reg.read_rank(0);
  RACER_CHECK(final.match_latency.count == 1 && final.match_latency.sum == 5,
              "metrics_histogram: quiescent read must be exact");
}

/// Plain counters are relaxed fetch_adds: concurrent updates are never
/// lost and the quiescent read is exact.
void metrics_counters() {
  MetricsRegistry reg(1);
  run_threads({[&] { reg.on_send(0, 8); }, [&] { reg.on_send(0, 8); }});
  const RankMetrics final = reg.read_rank(0);
  RACER_CHECK(final.sends == 2 && final.send_bytes == 16,
              "metrics_counters: lost a relaxed increment");
}

/// The job abort protocol, op for op: Job::abort writes the reason once,
/// then flips abort_flag_ with release (job.cpp); every mailbox hot path
/// checks the flag with acquire and only then reads the reason
/// (Mailbox::check_abort_locked).  Observing the flag must imply
/// observing the reason.
void mailbox_abort_flag() {
  mph::atomic<int> abort_reason{0};  // stands in for the write-once string
  mph::atomic<bool> abort_flag{false};
  name_location(&abort_reason, "abort_reason");
  name_location(&abort_flag, "abort_flag");
  run_threads({[&] {
                 abort_reason.store(42, std::memory_order_relaxed);
                 abort_flag.store(true, std::memory_order_release);
               },
               [&] {
                 if (abort_flag.load(std::memory_order_acquire)) {
                   RACER_CHECK(
                       abort_reason.load(std::memory_order_relaxed) == 42,
                       "mailbox_abort_flag: flag observed without reason");
                 }
               }});
}

/// The wildcard-receive counter (Mailbox::wildcard_recvs_): relaxed
/// fetch_adds from racing receivers are never lost, and a concurrent
/// reader sees a monotone value.
void mailbox_wildcard_counter() {
  mph::atomic<std::uint64_t> wildcard_recvs{0};
  name_location(&wildcard_recvs, "wildcard_recvs");
  run_threads({[&] { wildcard_recvs.fetch_add(1, std::memory_order_relaxed); },
               [&] { wildcard_recvs.fetch_add(1, std::memory_order_relaxed); },
               [&] {
                 const std::uint64_t a =
                     wildcard_recvs.load(std::memory_order_relaxed);
                 const std::uint64_t b =
                     wildcard_recvs.load(std::memory_order_relaxed);
                 RACER_CHECK(b >= a && b <= 2,
                             "mailbox_wildcard_counter: non-monotone read");
               }});
  RACER_CHECK(wildcard_recvs.load(std::memory_order_relaxed) == 2,
              "mailbox_wildcard_counter: lost an increment");
}

// ---------------------------------------------------------------------------
// Seeded mutants — bugs the checker MUST find (expect_failure).
// ---------------------------------------------------------------------------

/// Mutant 1: the TraceRing publish protocol with the stamp store demoted
/// to relaxed where release is needed.  An acquire reader can then accept
/// the stamp without the payload store being visible — the exact bug class
/// the shim port guards against.
void mutant_relaxed_publish() {
  mph::atomic<std::uint64_t> payload{0};
  mph::atomic<std::uint64_t> stamp{0};
  name_location(&payload, "payload");
  name_location(&stamp, "stamp");
  run_threads({[&] {
                 payload.store(7, std::memory_order_relaxed);
                 // BUG (seeded): must be memory_order_release.
                 stamp.store(1, std::memory_order_relaxed);
               },
               [&] {
                 if (stamp.load(std::memory_order_acquire) == 1) {
                   RACER_CHECK(
                       payload.load(std::memory_order_relaxed) == 7,
                       "mutant_relaxed_publish: stamp without payload");
                 }
               }});
}

/// Mutant 2: a 64-bit statistic split across two words and updated with
/// two stores (no seqlock, no single 64-bit atomic).  Even at seq_cst a
/// reader interleaving between the stores sees a torn value — the bug is
/// non-atomicity, found by schedule interleaving alone.
void mutant_torn_pair() {
  mph::atomic<std::uint32_t> lo{0xFFFFFFFFU};
  mph::atomic<std::uint32_t> hi{0};
  name_location(&lo, "lo");
  name_location(&hi, "hi");
  run_threads({[&] {
                 // Logically: 64-bit counter 0x00000000FFFFFFFF += 1.
                 // BUG (seeded): the two halves are separate stores.
                 lo.store(0);
                 hi.store(1);
               },
               [&] {
                 const std::uint64_t h = hi.load();
                 const std::uint64_t l = lo.load();
                 const std::uint64_t v = (h << 32U) | l;
                 RACER_CHECK(v == 0xFFFFFFFFULL || v == 0x100000000ULL,
                             "mutant_torn_pair: torn two-word read");
               }});
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

RacerOptions bounds(std::uint64_t max_execs, int preemptions) {
  RacerOptions o;
  o.max_executions = max_execs;
  o.preemption_bound = preemptions;
  return o;
}

const std::vector<LitmusCase>& cases() {
  // Pinned bounds: each case is exhaustive (complete == true) at these
  // settings; tests/racer/test_structures.cpp asserts that, so a change
  // that blows up the state space fails loudly instead of silently
  // truncating coverage.
  static const std::vector<LitmusCase> kCases = {
      {"sb_relaxed", "store buffering, relaxed: full outcome space", false,
       bounds(50000, 2), &sb_relaxed},
      {"sb_seq_cst", "store buffering, seq_cst: (0,0) forbidden", false,
       bounds(50000, 2), &sb_seq_cst},
      {"mp_rel_acq", "message passing, release/acquire: no stale data", false,
       bounds(50000, 2), &mp_rel_acq},
      {"mp_relaxed", "message passing, relaxed flag: stale data found", true,
       bounds(50000, 2), &mp_relaxed},
      {"coherence", "per-location order: re-reads never go backward", false,
       bounds(50000, 2), &coherence},
      {"trace_ring_spsc", "TraceRing: producer vs live snapshot", false,
       bounds(2000000, 2), &trace_ring_spsc},
      {"trace_ring_lap", "TraceRing: capacity-1 lap never tears an event",
       false, bounds(2000000, 2), &trace_ring_lap},
      {"trace_ring_mpsc", "TraceRing: two producers, distinct claims", false,
       bounds(2000000, 2), &trace_ring_mpsc},
      {"metrics_histogram", "MetricsRegistry: no phantom histogram events",
       false, bounds(2000000, 2), &metrics_histogram},
      {"metrics_counters", "MetricsRegistry: relaxed adds never lost", false,
       bounds(200000, 2), &metrics_counters},
      {"mailbox_abort_flag", "Job/Mailbox abort protocol: flag implies reason",
       false, bounds(50000, 2), &mailbox_abort_flag},
      {"mailbox_wildcard_counter", "Mailbox wildcard counter: monotone, exact",
       false, bounds(200000, 2), &mailbox_wildcard_counter},
      {"mutant_relaxed_publish", "SEEDED BUG: relaxed store needing release",
       true, bounds(50000, 2), &mutant_relaxed_publish},
      {"mutant_torn_pair", "SEEDED BUG: torn two-word statistic read", true,
       bounds(50000, 2), &mutant_torn_pair},
  };
  return kCases;
}

}  // namespace

const std::vector<LitmusCase>& litmus_cases() { return cases(); }

const LitmusCase* find_litmus(std::string_view name) {
  for (const LitmusCase& c : cases()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

RacerReport run_litmus(const LitmusCase& c,
                       const RacerOptions* override_bounds) {
  Engine e;
  return e.explore(c.name, c.body,
                   override_bounds != nullptr ? *override_bounds : c.bounds);
}

RacerReport replay_litmus(const LitmusCase& c,
                          const std::vector<Decision>& schedule,
                          const RacerOptions* override_bounds) {
  Engine e;
  return e.replay(c.name, c.body,
                  override_bounds != nullptr ? *override_bounds : c.bounds,
                  schedule);
}

bool litmus_verdict(const LitmusCase& c, const RacerReport& r) {
  if (!r.divergence.empty()) return false;
  if (c.expect_failure) return r.failed;
  return r.ok();
}

}  // namespace minimpi::racer
