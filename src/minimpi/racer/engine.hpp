// racer/engine.hpp — the mph_racer exploration engine.
//
// Stateless model checking in the mph_verify idiom (DESIGN.md §10), applied
// one layer down: instead of exploring wildcard-match decisions, the engine
// explores every branch point of a small multi-threaded litmus body —
// which runnable thread takes the next atomic step (with CHESS-style
// preemption bounding and DPOR-style sleep sets), which store each load
// reads from under the memory model in model.hpp, and whether each CAS
// succeeds or fails (and against which store).  Executions are replayed
// from a decision prefix, budgets report "explored N of >= M" via a
// frontier lower bound, and a failing execution is captured as a JSON
// trace that `tools/mph_racer --schedule` replays to the same failure.
//
// Litmus bodies run on real std::threads coordinated by a turnstile: every
// mph::atomic operation parks the thread and announces a PendingOp; the
// driver waits until all live threads are parked or finished, picks one via
// a recorded decision, applies its operation to the model under the engine
// lock, and grants it.  Between the park points the body runs native code
// freely, so litmus tests exercise the real TraceRing / MetricsRegistry
// implementations, not transliterations.
//
// Only translation units compiled with -DMPH_RACER=1 (the minimpi_racer
// library) may include this header.
#pragma once

#if !defined(MPH_RACER) || !MPH_RACER
#error "racer/engine.hpp requires -DMPH_RACER=1 (link minimpi_racer, not minimpi)"
#endif

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/minimpi/racer/model.hpp"

namespace minimpi::racer {

/// Invariant violation raised by RACER_CHECK inside a litmus body.  The
/// engine catches it, captures the decision stack + event log as a
/// counterexample, and stops exploring.
class LitmusFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Engine malfunction or unsupported usage (too many threads, quiescence
/// timeout, nested run_threads).  Aborts the whole exploration.
class RacerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exploration budgets and bounds.  The defaults suit litmus-sized bodies;
/// each registered litmus pins its own (tests/racer asserts completeness at
/// the pinned bounds, so loosening them is a reviewed change).
struct RacerOptions {
  std::uint64_t max_executions = 200000;  ///< 0 = unlimited
  std::uint64_t budget_ms = 0;            ///< wall-clock budget; 0 = none
  int preemption_bound = 2;  ///< max context switches away from a runnable
                             ///< thread (rf branching is never bounded)
  std::uint64_t max_steps = 20000;  ///< per-execution op cap (spin-loop trap)
};

/// What one exploration did.  `ok()` is the gate predicate: complete, no
/// divergence, no failure (callers expecting a mutant invert `failed`).
struct RacerReport {
  std::string litmus;
  std::uint64_t executions = 0;  ///< distinct executions fully run
  std::uint64_t redundant = 0;   ///< sleep-set-blocked executions drained
  std::uint64_t frontier_lower_bound = 0;  ///< ">= M" in "explored N of >= M"
  std::uint64_t pruned_preemptions = 0;  ///< branches cut by the bound
  std::uint64_t max_decision_depth = 0;
  bool complete = false;  ///< frontier exhausted (within the preemption bound)
  bool exec_budget_exhausted = false;
  bool time_budget_exhausted = false;
  std::string divergence;  ///< non-empty: replay mismatch, exploration void
  bool failed = false;
  std::string failure_reason;
  std::vector<Decision> failure_decisions;  ///< schedule reproducing failure
  std::vector<StepEvent> failure_events;    ///< applied-op log of that run

  /// Gate predicate for "this litmus must pass": every execution within the
  /// bound was checked and none failed.
  [[nodiscard]] bool ok() const {
    return complete && divergence.empty() && !failed;
  }
  [[nodiscard]] std::string summary() const;
};

/// Serialize a failing report as a replayable JSON counterexample trace.
[[nodiscard]] std::string trace_to_json(const RacerReport& report);

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Exhaustively explore `body` (stopping at the first failing execution).
  RacerReport explore(const std::string& name,
                      const std::function<void()>& body,
                      const RacerOptions& options);

  /// Run exactly one execution following `schedule` (a decision stack from
  /// a counterexample trace).  Decisions beyond the schedule default to
  /// option 0; mismatching branch shapes are reported as divergence.
  RacerReport replay(const std::string& name,
                     const std::function<void()>& body,
                     const RacerOptions& options,
                     std::vector<Decision> schedule);

  /// Spawn one worker per body, interleave their atomic ops under the
  /// model, join them, and re-throw the lowest-tid worker exception (after
  /// all workers finished).  Callable from the litmus body (tid 0) only.
  void run_threads(std::vector<std::function<void()>> bodies);

 private:
  friend std::uint64_t shim_load(Engine&, const void*, Mo, std::uint64_t);
  friend void shim_store(Engine&, const void*, std::uint64_t, Mo,
                         std::uint64_t);
  friend std::uint64_t shim_rmw(Engine&, const void*, Rmw, std::uint64_t,
                                unsigned, Mo, std::uint64_t);
  friend bool shim_cas(Engine&, const void*, std::uint64_t&, std::uint64_t,
                       Mo, Mo, std::uint64_t);
  friend void shim_init(Engine&, const void*, std::uint64_t);
  friend void shim_destroy(Engine&, const void*) noexcept;
  friend void name_location(const void*, const char*);

  struct PendingOp {
    enum class Kind : std::uint8_t { load, store, rmw, cas, init, destroy };
    Kind kind = Kind::load;
    const void* obj = nullptr;
    Mo order = Mo::seq_cst;
    Mo failure_order = Mo::seq_cst;
    Rmw rop = Rmw::exchange;
    std::uint64_t operand = 0;   ///< store value / rmw operand / cas desired
    std::uint64_t expected = 0;  ///< cas comparand in, observed value out
    std::uint64_t fallback = 0;  ///< first-touch initial value
    std::uint64_t result = 0;
    unsigned width = 8;          ///< sizeof(T), for rmw wraparound
    bool cas_ok = false;
    [[nodiscard]] bool is_write() const noexcept {
      return kind != Kind::load;
    }
  };

  struct ThreadState {
    enum class Phase : std::uint8_t { idle, running, parked, finished };
    Clock clock;
    std::unordered_map<int, int> observed;  ///< loc id -> coherence floor
    Phase phase = Phase::idle;
    bool granted = false;
    PendingOp op;
    std::exception_ptr error;
    std::thread th;
  };

  // One atomic op from the calling thread's perspective: tid 0 applies
  // inline; workers park on the turnstile and wait for a grant.
  void execute(PendingOp& op);
  void worker_main(int tid, const std::function<void()>& body);

  // Driver side (all under ts_mutex_).
  void drive(std::unique_lock<std::mutex>& lk);
  int pick_thread();
  void apply(int tid, PendingOp& op);
  void do_load(int tid, PendingOp& op, int loc_id);
  void do_store(int tid, PendingOp& op, int loc_id);
  void do_rmw(int tid, PendingOp& op, int loc_id);
  void do_cas(int tid, PendingOp& op, int loc_id);
  void wake_dependent(const PendingOp& applied);
  int decide(char kind, int options, int pruned, std::string note);
  int touch(const void* obj, std::uint64_t initial);
  int load_floor(const ThreadState& thr, int loc_id, Mo order) const;
  void set_observed(ThreadState& thr, int loc_id, int mo_index);
  void record_event(int tid, std::string text);
  void model_error(std::string what);

  RacerReport run_loop(const std::string& name,
                       const std::function<void()>& body,
                       const RacerOptions& options, bool replay_mode);
  void reset_execution();

  // --- turnstile ---
  std::mutex ts_mutex_;
  std::condition_variable cv_;
  std::array<ThreadState, kMaxThreads> threads_;
  int next_tid_ = 1;
  int spawned_ = 0;
  int parked_ = 0;
  int finished_ = 0;

  // --- per-execution model state ---
  std::vector<Location> locations_;
  std::unordered_map<const void*, int> loc_index_;
  std::unordered_map<const void*, std::string> pending_names_;
  std::unordered_set<int> sleeping_;
  std::vector<StepEvent> events_;
  int current_ = 0;
  int preemptions_ = 0;
  std::uint64_t steps_ = 0;
  bool drain_ = false;         ///< stop branching, run out deterministically
  bool sleep_blocked_ = false; ///< this execution is a sleep-set redundancy
  std::string divergence_;
  std::string engine_error_;

  // --- exploration state ---
  std::vector<Decision> stack_;
  std::size_t cursor_ = 0;
  std::uint64_t pruned_accum_ = 0;
  bool replay_mode_ = false;
  RacerOptions opt_;
  RacerReport report_;
};

/// The engine driving this thread, if any (set for the litmus body and its
/// workers during explore/replay).
[[nodiscard]] Engine* current_engine() noexcept;

/// Spawn-and-join helper litmus bodies use.  Under an engine this is
/// Engine::run_threads (modeled interleaving); without one it spawns plain
/// std::threads and joins them, so the same bodies double as native stress
/// tests (e.g. under tsan).
void run_threads(std::vector<std::function<void()>> bodies);

}  // namespace minimpi::racer

/// Invariant check for litmus bodies: throws LitmusFailure with the failed
/// expression and message.  Usable from worker threads; the engine delivers
/// worker failures at join.
#define RACER_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::minimpi::racer::LitmusFailure(std::string(msg) +        \
                                            " [failed: " #cond "]");  \
    }                                                                 \
  } while (0)
