// racer/engine.cpp — exploration engine implementation.  See engine.hpp for
// the architecture and model.hpp for the memory-model fragment.
#include "src/minimpi/racer/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace minimpi::racer {

namespace {

thread_local Engine* tl_engine = nullptr;
thread_local int tl_tid = 0;

/// Installs the engine on the litmus body's thread for one exploration.
class ScopedEngine {
 public:
  explicit ScopedEngine(Engine* e) : prev_engine_(tl_engine), prev_tid_(tl_tid) {
    tl_engine = e;
    tl_tid = 0;
  }
  ~ScopedEngine() {
    tl_engine = prev_engine_;
    tl_tid = prev_tid_;
  }
  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;

 private:
  Engine* prev_engine_;
  int prev_tid_;
};

[[nodiscard]] std::uint64_t mask_width(std::uint64_t v, unsigned width) {
  if (width >= 8) return v;
  return v & ((std::uint64_t{1} << (8 * width)) - 1);
}

[[nodiscard]] std::uint64_t eval_rmw(Rmw op, std::uint64_t prev,
                                     std::uint64_t operand, unsigned width) {
  std::uint64_t v = 0;
  switch (op) {
    case Rmw::exchange: v = operand; break;
    case Rmw::add: v = prev + operand; break;
    case Rmw::sub: v = prev - operand; break;
    case Rmw::and_: v = prev & operand; break;
    case Rmw::or_: v = prev | operand; break;
    case Rmw::xor_: v = prev ^ operand; break;
  }
  return mask_width(v, width);
}

[[nodiscard]] std::string store_desc(const Store& s) {
  if (s.tid < 0) return "init";
  return "t" + std::to_string(s.tid) + "#" + std::to_string(s.seq);
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

constexpr std::size_t kMaxEvents = 4096;
constexpr auto kQuiescenceTimeout = std::chrono::seconds(10);

}  // namespace

Engine* current_engine() noexcept { return tl_engine; }

Engine::Engine() = default;
Engine::~Engine() = default;

// ---------------------------------------------------------------------------
// Exploration loop

RacerReport Engine::explore(const std::string& name,
                            const std::function<void()>& body,
                            const RacerOptions& options) {
  stack_.clear();
  return run_loop(name, body, options, /*replay_mode=*/false);
}

RacerReport Engine::replay(const std::string& name,
                           const std::function<void()>& body,
                           const RacerOptions& options,
                           std::vector<Decision> schedule) {
  stack_ = std::move(schedule);
  return run_loop(name, body, options, /*replay_mode=*/true);
}

RacerReport Engine::run_loop(const std::string& name,
                             const std::function<void()>& body,
                             const RacerOptions& options, bool replay_mode) {
  opt_ = options;
  replay_mode_ = replay_mode;
  report_ = RacerReport{};
  report_.litmus = name;
  pruned_accum_ = 0;
  engine_error_.clear();

  const auto start = std::chrono::steady_clock::now();
  ScopedEngine guard(this);

  for (;;) {
    if (opt_.max_executions != 0 &&
        report_.executions + report_.redundant >= opt_.max_executions) {
      report_.exec_budget_exhausted = true;
      break;
    }
    if (opt_.budget_ms != 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (static_cast<std::uint64_t>(elapsed) >= opt_.budget_ms) {
        report_.time_budget_exhausted = true;
        break;
      }
    }

    reset_execution();
    bool failed = false;
    std::string reason;
    try {
      body();
    } catch (const LitmusFailure& f) {
      failed = true;
      reason = f.what();
    }
    // RacerError and non-litmus exceptions propagate: they void the whole
    // exploration rather than counting as counterexamples.

    if (!divergence_.empty()) {
      report_.divergence = divergence_;
      break;
    }
    if (sleep_blocked_) {
      ++report_.redundant;
    } else {
      ++report_.executions;
    }
    if (failed) {
      report_.failed = true;
      report_.failure_reason = reason;
      report_.failure_decisions = stack_;
      report_.failure_events = events_;
      break;
    }
    if (replay_mode_) {
      report_.complete = true;
      break;
    }

    // Backtrack: drop exhausted suffix, advance the deepest open decision.
    while (!stack_.empty() &&
           stack_.back().chosen + 1 >= stack_.back().options) {
      stack_.pop_back();
    }
    if (stack_.empty()) {
      report_.complete = true;
      break;
    }
    ++stack_.back().chosen;
  }

  std::uint64_t remaining = 0;
  for (const Decision& d : stack_) {
    remaining += static_cast<std::uint64_t>(d.options - d.chosen - 1);
  }
  report_.frontier_lower_bound =
      report_.executions + report_.redundant + remaining + pruned_accum_;
  report_.pruned_preemptions = pruned_accum_;

  if (!engine_error_.empty()) throw RacerError(engine_error_);
  return report_;
}

void Engine::reset_execution() {
  for (auto& ts : threads_) {
    ts.clock = Clock{};
    ts.observed.clear();
    ts.phase = ThreadState::Phase::idle;
    ts.granted = false;
    ts.op = PendingOp{};
    ts.error = nullptr;
  }
  threads_[0].phase = ThreadState::Phase::running;
  next_tid_ = 1;
  spawned_ = parked_ = finished_ = 0;
  locations_.clear();
  loc_index_.clear();
  pending_names_.clear();
  sleeping_.clear();
  events_.clear();
  current_ = 0;
  preemptions_ = 0;
  steps_ = 0;
  drain_ = false;
  sleep_blocked_ = false;
  divergence_.clear();
  cursor_ = 0;
}

// ---------------------------------------------------------------------------
// Turnstile

void Engine::run_threads(std::vector<std::function<void()>> bodies) {
  if (tl_engine != this || tl_tid != 0) {
    throw RacerError(
        "mph_racer: run_threads may only be called from the litmus body "
        "thread (no nested run_threads)");
  }
  std::unique_lock<std::mutex> lk(ts_mutex_);
  if (next_tid_ + static_cast<int>(bodies.size()) > kMaxThreads) {
    throw RacerError("mph_racer: too many worker threads (max " +
                     std::to_string(kMaxThreads - 1) + " per execution)");
  }
  const int base = next_tid_;
  for (auto& body : bodies) {
    const int tid = next_tid_++;
    auto& ts = threads_[tid];
    // Thread start synchronizes-with the body: the worker inherits the
    // spawner's clock and coherence floors.
    ts.clock = threads_[0].clock;
    ts.observed = threads_[0].observed;
    ts.phase = ThreadState::Phase::running;
    ts.granted = false;
    ts.error = nullptr;
    ++spawned_;
    ts.th = std::thread(
        [this, tid, fn = std::move(body)] { worker_main(tid, fn); });
  }

  try {
    drive(lk);
  } catch (...) {
    // Fatal engine diagnostic (quiescence timeout): workers may be stuck on
    // something outside the racer; detach rather than hang the suite.
    lk.unlock();
    for (int t = base; t < next_tid_; ++t) {
      if (threads_[t].th.joinable()) threads_[t].th.detach();
    }
    throw;
  }

  lk.unlock();
  for (int t = base; t < next_tid_; ++t) {
    if (threads_[t].th.joinable()) threads_[t].th.join();
  }
  lk.lock();
  for (int t = base; t < next_tid_; ++t) {
    // Join synchronizes-with: the spawner absorbs worker clocks and floors.
    threads_[0].clock.join(threads_[t].clock);
    for (const auto& [loc, idx] : threads_[t].observed) {
      int& cur = threads_[0].observed[loc];
      if (idx > cur) cur = idx;
    }
  }
  lk.unlock();

  if (!engine_error_.empty()) throw RacerError(engine_error_);
  for (int t = base; t < next_tid_; ++t) {
    if (threads_[t].error) std::rethrow_exception(threads_[t].error);
  }
}

void Engine::worker_main(int tid, const std::function<void()>& body) {
  tl_engine = this;
  tl_tid = tid;
  try {
    body();
  } catch (...) {
    threads_[tid].error = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(ts_mutex_);
  threads_[tid].phase = ThreadState::Phase::finished;
  ++finished_;
  cv_.notify_all();
}

void Engine::drive(std::unique_lock<std::mutex>& lk) {
  while (finished_ < spawned_) {
    const bool quiescent = cv_.wait_for(
        lk, kQuiescenceTimeout,
        [&] { return parked_ + finished_ == spawned_; });
    if (!quiescent) {
      throw RacerError(
          "mph_racer: quiescence timeout — a worker thread is blocked "
          "outside the racer (native mutex/condvar held across an atomic "
          "op, or an unbounded spin loop?)");
    }
    if (finished_ == spawned_) break;

    const int tid = pick_thread();
    auto& ts = threads_[tid];
    apply(tid, ts.op);
    wake_dependent(ts.op);
    --parked_;
    ts.phase = ThreadState::Phase::running;
    ts.granted = true;
    cv_.notify_all();
  }
}

void Engine::execute(PendingOp& op) {
  if (tl_tid == 0) {
    // The litmus body thread runs alone (workers only exist inside
    // run_threads, where the body is blocked driving them), so its ops
    // apply inline without a scheduling decision.
    std::lock_guard<std::mutex> lk(ts_mutex_);
    apply(0, op);
    if (!engine_error_.empty()) throw RacerError(engine_error_);
    return;
  }
  const int tid = tl_tid;
  std::unique_lock<std::mutex> lk(ts_mutex_);
  auto& ts = threads_[tid];
  ts.op = op;
  ts.phase = ThreadState::Phase::parked;
  ++parked_;
  cv_.notify_all();
  cv_.wait(lk, [&] { return ts.granted; });
  ts.granted = false;
  op = ts.op;
  // A model error (step-limit trip, too many threads, ...) must abort the
  // worker too — a spin loop would otherwise keep parking forever and the
  // driver would keep granting it.
  if (!engine_error_.empty()) throw RacerError(engine_error_);
}

int Engine::pick_thread() {
  std::vector<int> order;
  if (current_ >= 1 &&
      threads_[current_].phase == ThreadState::Phase::parked) {
    order.push_back(current_);
  }
  for (int t = 1; t < next_tid_; ++t) {
    if (t != current_ && threads_[t].phase == ThreadState::Phase::parked) {
      order.push_back(t);
    }
  }
  if (drain_) return order.front();

  std::vector<int> awake;
  for (int t : order) {
    if (sleeping_.count(t) == 0) awake.push_back(t);
  }
  if (awake.empty()) {
    // Every runnable thread is asleep: this execution is equivalent to one
    // reached via a different decision order.  Run it out without
    // recording further decisions and count it as redundant.
    sleep_blocked_ = true;
    drain_ = true;
    return order.front();
  }

  const bool cur_runnable = awake.front() == current_;
  int pruned = 0;
  if (cur_runnable && preemptions_ >= opt_.preemption_bound &&
      awake.size() > 1) {
    pruned = static_cast<int>(awake.size()) - 1;
    awake.resize(1);
  }

  std::string note = "sched";
  for (std::size_t i = 0; i < awake.size(); ++i) {
    note += (i == 0 ? " t" : "|t") + std::to_string(awake[i]);
  }
  int k = decide('t', static_cast<int>(awake.size()), pruned, std::move(note));
  if (k < 0 || k >= static_cast<int>(awake.size())) k = 0;
  for (int i = 0; i < k; ++i) sleeping_.insert(awake[static_cast<std::size_t>(i)]);
  const int chosen = awake[static_cast<std::size_t>(k)];
  if (cur_runnable && chosen != current_) ++preemptions_;
  current_ = chosen;
  return chosen;
}

void Engine::wake_dependent(const PendingOp& applied) {
  if (sleeping_.empty()) return;
  for (auto it = sleeping_.begin(); it != sleeping_.end();) {
    const auto& ts = threads_[static_cast<std::size_t>(*it)];
    const bool dependent = ts.phase == ThreadState::Phase::parked &&
                           ts.op.obj == applied.obj &&
                           (applied.is_write() || ts.op.is_write());
    it = dependent ? sleeping_.erase(it) : std::next(it);
  }
}

// ---------------------------------------------------------------------------
// Decisions

int Engine::decide(char kind, int options, int pruned, std::string note) {
  if (drain_) return 0;
  if (options <= 1 && pruned == 0) return 0;
  if (cursor_ < stack_.size()) {
    Decision& d = stack_[cursor_];
    if (d.kind != kind || d.options != options) {
      divergence_ = "decision " + std::to_string(cursor_) + " diverged: " +
                    "recorded kind '" + std::string(1, d.kind) + "' with " +
                    std::to_string(d.options) + " option(s), execution hit '" +
                    std::string(1, kind) + "' with " +
                    std::to_string(options) + " (" + note + ")";
      drain_ = true;
      return 0;
    }
    ++cursor_;
    if (d.chosen < 0 || d.chosen >= options) {
      divergence_ = "decision " + std::to_string(cursor_ - 1) +
                    " chose option " + std::to_string(d.chosen) + " of " +
                    std::to_string(options) + " (" + note + ")";
      drain_ = true;
      return 0;
    }
    return d.chosen;
  }
  if (replay_mode_) return 0;  // beyond the schedule: natural execution
  stack_.push_back(Decision{kind, 0, options, pruned, std::move(note)});
  pruned_accum_ += static_cast<std::uint64_t>(pruned);
  ++cursor_;
  if (stack_.size() > report_.max_decision_depth) {
    report_.max_decision_depth = stack_.size();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Memory model

int Engine::touch(const void* obj, std::uint64_t initial) {
  auto it = loc_index_.find(obj);
  if (it != loc_index_.end()) return it->second;
  const int id = static_cast<int>(locations_.size());
  Location loc;
  loc.obj = obj;
  auto nit = pending_names_.find(obj);
  loc.name = nit != pending_names_.end() ? nit->second
                                         : "a" + std::to_string(id);
  Store init;  // prehistory: the value the object held before exploration
  init.value = initial;
  loc.mo.push_back(init);
  locations_.push_back(std::move(loc));
  loc_index_.emplace(obj, id);
  return id;
}

int Engine::load_floor(const ThreadState& thr, int loc_id, Mo order) const {
  const Location& loc = locations_[static_cast<std::size_t>(loc_id)];
  int floor = 0;
  auto it = thr.observed.find(loc_id);
  if (it != thr.observed.end()) floor = it->second;
  // A load may not read anything older than the newest store that
  // happens-before it; scan newest-first, the first hb hit is the max.
  for (int i = static_cast<int>(loc.mo.size()) - 1; i > floor; --i) {
    if (store_hb(loc.mo[static_cast<std::size_t>(i)], thr.clock)) {
      floor = i;
      break;
    }
  }
  if (order == Mo::seq_cst && loc.last_sc_store > floor) {
    floor = loc.last_sc_store;
  }
  return floor;
}

void Engine::set_observed(ThreadState& thr, int loc_id, int mo_index) {
  int& cur = thr.observed[loc_id];
  if (mo_index > cur) cur = mo_index;
}

void Engine::apply(int tid, PendingOp& op) {
  auto& thr = threads_[static_cast<std::size_t>(tid)];
  if (++steps_ > opt_.max_steps && opt_.max_steps != 0) {
    model_error("mph_racer: per-execution step limit (" +
                std::to_string(opt_.max_steps) +
                ") exceeded — unbounded spin loop in the litmus body?");
  }
  ++thr.clock.c[static_cast<std::size_t>(tid)];

  if (op.kind == PendingOp::Kind::destroy) {
    loc_index_.erase(op.obj);
    return;
  }
  if (op.kind == PendingOp::Kind::init) {
    const int id = touch(op.obj, op.operand);
    Location& loc = locations_[static_cast<std::size_t>(id)];
    loc.mo.clear();
    loc.last_sc_store = 0;
    Store s;  // initialization is an ordinary visible write by this thread
    s.value = op.operand;
    s.tid = tid;
    s.seq = thr.clock.c[static_cast<std::size_t>(tid)];
    s.release = thr.clock;
    loc.mo.push_back(s);
    set_observed(thr, id, 0);
    return;
  }

  const int loc_id = touch(op.obj, op.fallback);
  switch (op.kind) {
    case PendingOp::Kind::load: do_load(tid, op, loc_id); break;
    case PendingOp::Kind::store: do_store(tid, op, loc_id); break;
    case PendingOp::Kind::rmw: do_rmw(tid, op, loc_id); break;
    case PendingOp::Kind::cas: do_cas(tid, op, loc_id); break;
    case PendingOp::Kind::init:
    case PendingOp::Kind::destroy: break;
  }
}

void Engine::do_load(int tid, PendingOp& op, int loc_id) {
  auto& thr = threads_[static_cast<std::size_t>(tid)];
  Location& loc = locations_[static_cast<std::size_t>(loc_id)];
  const int floor = load_floor(thr, loc_id, op.order);
  const int n = static_cast<int>(loc.mo.size()) - floor;
  int k = decide('r', n, 0, loc.name);
  if (k < 0 || k >= n) k = 0;
  const int idx = static_cast<int>(loc.mo.size()) - 1 - k;
  const Store& s = loc.mo[static_cast<std::size_t>(idx)];
  if (is_acquire(op.order)) thr.clock.join(s.release);
  set_observed(thr, loc_id, idx);
  op.result = s.value;
  record_event(tid, "load " + loc.name + " -> " + std::to_string(s.value) +
                        " " + mo_name(op.order) + " (rf " + store_desc(s) +
                        ")");
}

void Engine::do_store(int tid, PendingOp& op, int loc_id) {
  auto& thr = threads_[static_cast<std::size_t>(tid)];
  Location& loc = locations_[static_cast<std::size_t>(loc_id)];
  Store s;
  s.value = op.operand;
  s.tid = tid;
  s.seq = thr.clock.c[static_cast<std::size_t>(tid)];
  s.sc = op.order == Mo::seq_cst;
  if (is_release(op.order)) s.release = thr.clock;
  loc.mo.push_back(s);
  const int idx = static_cast<int>(loc.mo.size()) - 1;
  set_observed(thr, loc_id, idx);
  if (s.sc) loc.last_sc_store = idx;
  record_event(tid, "store " + loc.name + " = " + std::to_string(op.operand) +
                        " " + mo_name(op.order));
}

void Engine::do_rmw(int tid, PendingOp& op, int loc_id) {
  auto& thr = threads_[static_cast<std::size_t>(tid)];
  Location& loc = locations_[static_cast<std::size_t>(loc_id)];
  // An RMW is atomic: it always reads the newest store in mo.
  const Store prev = loc.mo.back();
  if (is_acquire(op.order)) thr.clock.join(prev.release);
  Store s;
  s.value = eval_rmw(op.rop, prev.value, op.operand, op.width);
  s.tid = tid;
  s.seq = thr.clock.c[static_cast<std::size_t>(tid)];
  s.sc = op.order == Mo::seq_cst;
  s.rmw = true;
  s.release = prev.release;  // RMWs continue the release sequence
  if (is_release(op.order)) s.release.join(thr.clock);
  loc.mo.push_back(s);
  const int idx = static_cast<int>(loc.mo.size()) - 1;
  set_observed(thr, loc_id, idx);
  if (s.sc) loc.last_sc_store = idx;
  op.result = prev.value;
  record_event(tid, "rmw " + loc.name + ": " + std::to_string(prev.value) +
                        " -> " + std::to_string(s.value) + " " +
                        mo_name(op.order));
}

void Engine::do_cas(int tid, PendingOp& op, int loc_id) {
  auto& thr = threads_[static_cast<std::size_t>(tid)];
  Location& loc = locations_[static_cast<std::size_t>(loc_id)];
  // Success must read the newest store (a successful CAS is an RMW);
  // failure is a plain load with the failure order, so it may read any
  // eligible store whose value differs from `expected`.
  const bool can_succeed = loc.mo.back().value == op.expected;
  const int floor = load_floor(thr, loc_id, op.failure_order);
  std::vector<int> fails;
  for (int i = static_cast<int>(loc.mo.size()) - 1; i >= floor; --i) {
    if (loc.mo[static_cast<std::size_t>(i)].value != op.expected) {
      fails.push_back(i);
    }
  }
  const int n = (can_succeed ? 1 : 0) + static_cast<int>(fails.size());
  int k = decide('c', n, 0, "cas " + loc.name);
  if (k < 0 || k >= n) k = 0;

  if (can_succeed && k == 0) {
    const Store prev = loc.mo.back();
    if (is_acquire(op.order)) thr.clock.join(prev.release);
    Store s;
    s.value = op.operand;
    s.tid = tid;
    s.seq = thr.clock.c[static_cast<std::size_t>(tid)];
    s.sc = op.order == Mo::seq_cst;
    s.rmw = true;
    s.release = prev.release;
    if (is_release(op.order)) s.release.join(thr.clock);
    loc.mo.push_back(s);
    const int idx = static_cast<int>(loc.mo.size()) - 1;
    set_observed(thr, loc_id, idx);
    if (s.sc) loc.last_sc_store = idx;
    op.cas_ok = true;
    op.result = prev.value;
    record_event(tid, "cas " + loc.name + " " + std::to_string(op.expected) +
                          " -> " + std::to_string(op.operand) + " ok " +
                          mo_name(op.order));
    return;
  }

  const int idx = fails[static_cast<std::size_t>(k - (can_succeed ? 1 : 0))];
  const Store& s = loc.mo[static_cast<std::size_t>(idx)];
  if (is_acquire(op.failure_order)) thr.clock.join(s.release);
  set_observed(thr, loc_id, idx);
  op.cas_ok = false;
  op.result = s.value;
  op.expected = s.value;
  record_event(tid, "cas " + loc.name + " failed, saw " +
                        std::to_string(s.value) + " (rf " + store_desc(s) +
                        ") " + mo_name(op.failure_order));
}

void Engine::record_event(int tid, std::string text) {
  if (events_.size() >= kMaxEvents) return;
  events_.push_back(StepEvent{tid, std::move(text)});
}

void Engine::model_error(std::string what) {
  if (engine_error_.empty()) engine_error_ = std::move(what);
  drain_ = true;
}

// ---------------------------------------------------------------------------
// Shim entry points

std::uint64_t shim_load(Engine& e, const void* obj, Mo order,
                        std::uint64_t fallback) {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::load;
  op.obj = obj;
  op.order = order;
  op.fallback = fallback;
  e.execute(op);
  return op.result;
}

void shim_store(Engine& e, const void* obj, std::uint64_t value, Mo order,
                std::uint64_t fallback) {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::store;
  op.obj = obj;
  op.order = order;
  op.operand = value;
  op.fallback = fallback;
  e.execute(op);
}

std::uint64_t shim_rmw(Engine& e, const void* obj, Rmw rop,
                       std::uint64_t operand, unsigned width, Mo order,
                       std::uint64_t fallback) {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::rmw;
  op.obj = obj;
  op.order = order;
  op.rop = rop;
  op.operand = operand;
  op.width = width;
  op.fallback = fallback;
  e.execute(op);
  return op.result;
}

bool shim_cas(Engine& e, const void* obj, std::uint64_t& expected,
              std::uint64_t desired, Mo success, Mo failure,
              std::uint64_t fallback) {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::cas;
  op.obj = obj;
  op.order = success;
  op.failure_order = failure;
  op.operand = desired;
  op.expected = expected;
  op.fallback = fallback;
  e.execute(op);
  expected = op.expected;
  return op.cas_ok;
}

void shim_init(Engine& e, const void* obj, std::uint64_t value) {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::init;
  op.obj = obj;
  op.operand = value;
  e.execute(op);
}

void shim_destroy(Engine& e, const void* obj) noexcept {
  Engine::PendingOp op;
  op.kind = Engine::PendingOp::Kind::destroy;
  op.obj = obj;
  try {
    e.execute(op);
  } catch (...) {
    // Destructors must not throw; a pending engine error resurfaces at the
    // next op or at run_loop exit.
  }
}

void name_location(const void* obj, const char* name) {
  Engine* e = tl_engine;
  if (e == nullptr) return;
  std::lock_guard<std::mutex> lk(e->ts_mutex_);
  auto it = e->loc_index_.find(obj);
  if (it != e->loc_index_.end()) {
    e->locations_[static_cast<std::size_t>(it->second)].name = name;
  }
  e->pending_names_[obj] = name;
}

// ---------------------------------------------------------------------------
// run_threads fallback + reporting

void run_threads(std::vector<std::function<void()>> bodies) {
  if (Engine* e = tl_engine) {
    e->run_threads(std::move(bodies));
    return;
  }
  // No engine: run natively (the same litmus bodies double as stress tests,
  // e.g. under tsan).  Failures from workers are rethrown lowest-index
  // first, matching the engine's delivery order.
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

std::string RacerReport::summary() const {
  std::string s = litmus + ": explored " + std::to_string(executions) +
                  " execution(s)";
  if (redundant != 0) {
    s += " (+" + std::to_string(redundant) + " sleep-set redundant)";
  }
  s += " of >= " + std::to_string(frontier_lower_bound);
  if (complete) {
    s += pruned_preemptions != 0
             ? "; complete within preemption bound (pruned " +
                   std::to_string(pruned_preemptions) + " switch(es))"
             : "; complete";
  }
  if (exec_budget_exhausted) s += "; execution budget exhausted";
  if (time_budget_exhausted) s += "; time budget exhausted";
  if (!divergence.empty()) s += "; DIVERGENCE: " + divergence;
  if (failed) s += "; FAILURE: " + failure_reason;
  return s;
}

std::string trace_to_json(const RacerReport& report) {
  std::string out = "{\n  \"kind\": \"mph_racer_trace\",\n  \"version\": 1,\n";
  out += "  \"litmus\": \"";
  json_escape_into(out, report.litmus);
  out += "\",\n  \"reason\": \"";
  json_escape_into(out, report.failure_reason);
  out += "\",\n  \"decisions\": [";
  for (std::size_t i = 0; i < report.failure_decisions.size(); ++i) {
    const Decision& d = report.failure_decisions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"" + std::string(1, d.kind) +
           "\", \"chosen\": " + std::to_string(d.chosen) +
           ", \"options\": " + std::to_string(d.options) +
           ", \"pruned\": " + std::to_string(d.pruned) + ", \"note\": \"";
    json_escape_into(out, d.note);
    out += "\"}";
  }
  out += "\n  ],\n  \"events\": [";
  for (std::size_t i = 0; i < report.failure_events.size(); ++i) {
    const StepEvent& ev = report.failure_events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"tid\": " + std::to_string(ev.tid) + ", \"text\": \"";
    json_escape_into(out, ev.text);
    out += "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace minimpi::racer
