// racer/model.hpp — the data model mph_racer explores.
//
// The engine models the fragment of the C++11 memory model the lock-free
// layer actually uses:
//
//   * Each atomic object is a Location with a modification order (`mo`) —
//     the sequence of Stores in the order they executed.  Modeling mo as
//     execution order is a deliberate simplification: it forbids
//     load-buffering executions (a load can never read a store that has not
//     executed yet), which matches every hardware the repo targets and every
//     compiler mapping in practice, and keeps exploration replayable.
//   * Happens-before is tracked with vector clocks (one component per
//     modeled thread).  A release-ish store snapshots its thread's clock;
//     an acquire-ish load that reads it joins that snapshot.  RMWs continue
//     the release sequence of the store they read (C++20 rule: only RMWs
//     extend a release sequence, same-thread relaxed stores do not).
//   * A load may read any store not hidden by coherence: at least as new
//     (in mo) as the newest store the thread has already read or written at
//     that location, and at least as new as the newest store that
//     happens-before the load.  seq_cst is approximated by a single total
//     order = execution order: an sc load additionally cannot read anything
//     older than the latest sc store to the location.  Fences are not
//     modeled (the lock-free layer uses none; the lint keeps it that way).
//
// Everything here is plain data; the exploration machinery lives in
// engine.hpp/engine.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/minimpi/racer/atomic.hpp"

namespace minimpi::racer {

/// Modeled threads: tid 0 is the exploration driver (the litmus body's own
/// thread); tids 1..kMaxThreads-1 are workers spawned via run_threads().
inline constexpr int kMaxThreads = 8;

/// Vector clock over modeled threads.
struct Clock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const Clock& o) noexcept {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
};

/// One write in a location's modification order.
struct Store {
  std::uint64_t value = 0;
  int tid = -1;           ///< writing thread; -1 = prehistory (initial value)
  std::uint32_t seq = 0;  ///< writer's clock component at the store
  bool sc = false;        ///< memory_order_seq_cst store
  bool rmw = false;       ///< produced by a read-modify-write
  Clock release;          ///< clock an acquire load of this store joins
};

/// Happens-before test: does `s` happen before a thread with clock `k`?
/// Prehistory stores happen before everything.
[[nodiscard]] inline bool store_hb(const Store& s, const Clock& k) noexcept {
  return s.tid < 0 || k.c[s.tid] >= s.seq;
}

/// One atomic object the execution has touched.
struct Location {
  const void* obj = nullptr;
  std::string name;        ///< "a<N>" by first touch, or racer::name_location
  std::vector<Store> mo;   ///< modification order; [0] is the initial store
  int last_sc_store = 0;   ///< mo index of the latest seq_cst store (0: none)
};

/// One recorded branch point of an execution.  The stack of Decisions is
/// the schedule: replaying the same stack reproduces the same execution.
struct Decision {
  char kind = 't';  ///< 't' thread choice, 'r' reads-from, 'c' cas outcome
  int chosen = 0;   ///< option taken in this execution
  int options = 1;  ///< how many options existed
  int pruned = 0;   ///< options excluded by the preemption bound
  std::string note; ///< location / candidate summary, for human-read traces
};

/// One applied atomic operation, pre-formatted for counterexample traces.
struct StepEvent {
  int tid = 0;
  std::string text;
};

[[nodiscard]] inline bool is_acquire(Mo o) noexcept {
  return o == Mo::acquire || o == Mo::acq_rel || o == Mo::seq_cst;
}
[[nodiscard]] inline bool is_release(Mo o) noexcept {
  return o == Mo::release || o == Mo::acq_rel || o == Mo::seq_cst;
}

[[nodiscard]] inline const char* mo_name(Mo o) noexcept {
  switch (o) {
    case Mo::relaxed: return "relaxed";
    case Mo::acquire: return "acquire";
    case Mo::release: return "release";
    case Mo::acq_rel: return "acq_rel";
    case Mo::seq_cst: return "seq_cst";
  }
  return "?";
}

}  // namespace minimpi::racer
