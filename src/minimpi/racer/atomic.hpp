// racer/atomic.hpp — the mph::atomic shim: one atomics vocabulary, two
// compilations.
//
// Every lock-free structure in src/minimpi declares its shared words as
// mph::atomic<T> (and mph::atomic_flag) instead of std::atomic.  In a
// normal build the shim is a pure alias — mph::atomic<T> IS std::atomic<T>,
// zero overhead, identical codegen — the same null-branch discipline as the
// checker/scheduler/tracer/metrics hook layers, applied at compile time.
//
// When a translation unit is compiled with -DMPH_RACER=1 (the minimpi_racer
// library that tests/racer and tools/mph_racer link), the shim becomes an
// instrumented class: every load, store, RMW and CAS is routed through the
// mph_racer exploration engine (racer/engine.hpp), which owns the value,
// enumerates which store each load may read from under the C++11 memory
// model, and replays decision prefixes.  Outside an active exploration the
// instrumented shim falls back to a real std::atomic, so racer-compiled
// code still runs normally.
//
// The static lint (`mph_inspect lint`) enforces that src/minimpi declares
// no raw std::atomic outside this header — the shim is only a model-checking
// seam if the lock-free layer actually goes through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(MPH_RACER) && MPH_RACER

namespace minimpi::racer {

class Engine;

/// Memory orders as the engine models them (consume is treated as acquire).
enum class Mo : std::uint8_t { relaxed, acquire, release, acq_rel, seq_cst };

/// Read-modify-write flavors the shim needs.
enum class Rmw : std::uint8_t { exchange, add, sub, and_, or_, xor_ };

/// The engine exploring on this thread, or null when no exploration is
/// active (then the shim uses its std::atomic fallback).
[[nodiscard]] Engine* current_engine() noexcept;

// Engine entry points used by the shim (defined in engine.cpp).  `fallback`
// is the object's current fallback value, used to seed the modeled location
// on first touch when the object predates the execution.
std::uint64_t shim_load(Engine& e, const void* obj, Mo order,
                        std::uint64_t fallback);
void shim_store(Engine& e, const void* obj, std::uint64_t value, Mo order,
                std::uint64_t fallback);
std::uint64_t shim_rmw(Engine& e, const void* obj, Rmw op,
                       std::uint64_t operand, unsigned width, Mo order,
                       std::uint64_t fallback);
bool shim_cas(Engine& e, const void* obj, std::uint64_t& expected,
              std::uint64_t desired, Mo success, Mo failure,
              std::uint64_t fallback);
void shim_init(Engine& e, const void* obj, std::uint64_t value);
void shim_destroy(Engine& e, const void* obj) noexcept;

/// Name the modeled location behind an atomic object in traces ("flag",
/// "stamp[0]", ...).  No-op when no exploration is active.
void name_location(const void* obj, const char* name);

[[nodiscard]] constexpr Mo to_mo(std::memory_order order) noexcept {
  switch (order) {
    case std::memory_order_relaxed: return Mo::relaxed;
    case std::memory_order_consume:
    case std::memory_order_acquire: return Mo::acquire;
    case std::memory_order_release: return Mo::release;
    case std::memory_order_acq_rel: return Mo::acq_rel;
    case std::memory_order_seq_cst: return Mo::seq_cst;
  }
  return Mo::seq_cst;
}

}  // namespace minimpi::racer

namespace mph {

/// Instrumented drop-in for std::atomic<T>.  T must fit the engine's
/// 64-bit word model (everything the lock-free layer stores does).
///
/// Unlike std::atomic, the shim's operations are NOT noexcept: under an
/// active engine they may throw LitmusFailure/RacerError to unwind the
/// litmus body (step-limit trips, model errors).  The destructor stays
/// non-throwing — shim_destroy swallows engine errors.
template <class T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mph::atomic models values as 64-bit words");

 public:
  atomic() : atomic(T{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor) — std::atomic converts too.
  atomic(T desired) : fallback_(desired) {
    if (auto* e = minimpi::racer::current_engine()) {
      minimpi::racer::shim_init(*e, this, to_bits(desired));
    }
  }
  ~atomic() {
    if (auto* e = minimpi::racer::current_engine()) {
      minimpi::racer::shim_destroy(*e, this);
    }
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_load(
          *e, this, minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.load(order);
  }

  void store(T desired,
             std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      minimpi::racer::shim_store(*e, this, to_bits(desired),
                                 minimpi::racer::to_mo(order),
                                 fallback_bits());
      return;
    }
    fallback_.store(desired, order);
  }

  T exchange(T desired,
             std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_rmw(
          *e, this, minimpi::racer::Rmw::exchange, to_bits(desired), sizeof(T),
          minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.exchange(desired, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      std::uint64_t bits = to_bits(expected);
      const bool ok = minimpi::racer::shim_cas(
          *e, this, bits, to_bits(desired), minimpi::racer::to_mo(success),
          minimpi::racer::to_mo(failure), fallback_bits());
      expected = from_bits(bits);
      return ok;
    }
    return fallback_.compare_exchange_strong(expected, desired, success,
                                             failure);
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) {
    // The model has no spurious failures; weak == strong under exploration.
    return compare_exchange_strong(expected, desired, success, failure);
  }

  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_add(T arg,
              std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_rmw(
          *e, this, minimpi::racer::Rmw::add, to_bits(arg), sizeof(T),
          minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.fetch_add(arg, order);
  }

  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_sub(T arg,
              std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_rmw(
          *e, this, minimpi::racer::Rmw::sub, to_bits(arg), sizeof(T),
          minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.fetch_sub(arg, order);
  }

  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_or(T arg,
             std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_rmw(
          *e, this, minimpi::racer::Rmw::or_, to_bits(arg), sizeof(T),
          minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.fetch_or(arg, order);
  }

  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_and(T arg,
              std::memory_order order = std::memory_order_seq_cst) {
    if (auto* e = minimpi::racer::current_engine()) {
      return from_bits(minimpi::racer::shim_rmw(
          *e, this, minimpi::racer::Rmw::and_, to_bits(arg), sizeof(T),
          minimpi::racer::to_mo(order), fallback_bits()));
    }
    return fallback_.fetch_and(arg, order);
  }

  // NOLINTNEXTLINE(google-explicit-constructor) — std::atomic converts too.
  operator T() const { return load(); }
  T operator=(T desired) {  // NOLINT(misc-unconventional-assign-operator)
    store(desired);
    return desired;
  }

 private:
  static std::uint64_t to_bits(T value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    return bits;
  }
  static T from_bits(std::uint64_t bits) noexcept {
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
  }
  std::uint64_t fallback_bits() const noexcept {
    return to_bits(fallback_.load(std::memory_order_relaxed));
  }

  mutable std::atomic<T> fallback_;
};

/// Instrumented drop-in for std::atomic_flag (test-and-set semantics only).
class atomic_flag {
 public:
  atomic_flag() noexcept = default;

  atomic_flag(const atomic_flag&) = delete;
  atomic_flag& operator=(const atomic_flag&) = delete;

  bool test_and_set(
      std::memory_order order = std::memory_order_seq_cst) {
    return word_.exchange(1, order) != 0;
  }
  void clear(std::memory_order order = std::memory_order_seq_cst) {
    word_.store(0, order);
  }
  [[nodiscard]] bool test(
      std::memory_order order = std::memory_order_seq_cst) const {
    return word_.load(order) != 0;
  }

 private:
  atomic<std::uint8_t> word_{0};
};

}  // namespace mph

#else  // !MPH_RACER

namespace mph {

// Plain build: the shim is std::atomic, exactly.
template <class T>
using atomic = std::atomic<T>;  // racer-lint: allow(std::atomic) — the shim
using atomic_flag = std::atomic_flag;  // racer-lint: allow(std::atomic)

}  // namespace mph

namespace minimpi::racer {

/// No-op outside racer builds so shared code can name locations freely.
inline void name_location(const void*, const char*) {}

}  // namespace minimpi::racer

#endif  // MPH_RACER
