#include "src/minimpi/topology.hpp"

#include <numeric>

#include "src/minimpi/error.hpp"

namespace minimpi {

Topology Topology::flat(int world_size) {
  return uniform(world_size, 1);
}

Topology Topology::uniform(int world_size, int tasks_per_node) {
  if (world_size <= 0) {
    throw Error(Errc::invalid_argument, "topology: world size must be > 0");
  }
  if (tasks_per_node <= 0) {
    throw Error(Errc::invalid_argument,
                "topology: tasks per node must be > 0");
  }
  std::vector<int> sizes;
  int remaining = world_size;
  while (remaining > 0) {
    sizes.push_back(std::min(tasks_per_node, remaining));
    remaining -= sizes.back();
  }
  return from_node_sizes(sizes);
}

Topology Topology::from_node_sizes(const std::vector<int>& node_sizes) {
  if (node_sizes.empty()) {
    throw Error(Errc::invalid_argument, "topology: no nodes");
  }
  Topology t;
  rank_t base = 0;
  for (std::size_t n = 0; n < node_sizes.size(); ++n) {
    const int size = node_sizes[n];
    if (size <= 0) {
      throw Error(Errc::invalid_argument,
                  "topology: node " + std::to_string(n) +
                      " has non-positive task count " + std::to_string(size));
    }
    t.node_base_.push_back(base);
    for (int i = 0; i < size; ++i) {
      t.node_of_.push_back(static_cast<int>(n));
    }
    base += size;
  }
  return t;
}

int Topology::node_of(rank_t world_rank) const {
  if (world_rank < 0 || world_rank >= world_size()) {
    throw Error(Errc::invalid_rank,
                "topology: rank " + std::to_string(world_rank) +
                    " outside world of " + std::to_string(world_size()));
  }
  return node_of_[static_cast<std::size_t>(world_rank)];
}

int Topology::cpu_of(rank_t world_rank) const {
  const int node = node_of(world_rank);
  return world_rank - node_base_[static_cast<std::size_t>(node)];
}

int Topology::tasks_on_node(int node) const {
  if (node < 0 || node >= num_nodes()) {
    throw Error(Errc::invalid_argument,
                "topology: node " + std::to_string(node) + " outside [0, " +
                    std::to_string(num_nodes()) + ")");
  }
  const rank_t base = node_base_[static_cast<std::size_t>(node)];
  const rank_t next = node + 1 < num_nodes()
                          ? node_base_[static_cast<std::size_t>(node) + 1]
                          : static_cast<rank_t>(world_size());
  return next - base;
}

std::vector<rank_t> Topology::ranks_on_node(int node) const {
  const rank_t base = node_base_[static_cast<std::size_t>(node)];
  std::vector<rank_t> ranks(static_cast<std::size_t>(tasks_on_node(node)));
  std::iota(ranks.begin(), ranks.end(), base);
  return ranks;
}

Comm split_by_node(const Comm& comm, const Topology& topology) {
  if (topology.world_size() != comm.job().world_size()) {
    throw Error(Errc::invalid_argument,
                "split_by_node: topology describes " +
                    std::to_string(topology.world_size()) +
                    " ranks but the job has " +
                    std::to_string(comm.job().world_size()));
  }
  const rank_t my_world = comm.global_of(comm.rank());
  return comm.split(topology.node_of(my_world), comm.rank());
}

Comm split_across_nodes(const Comm& comm, const Topology& topology) {
  if (topology.world_size() != comm.job().world_size()) {
    throw Error(Errc::invalid_argument,
                "split_across_nodes: topology describes " +
                    std::to_string(topology.world_size()) +
                    " ranks but the job has " +
                    std::to_string(comm.job().world_size()));
  }
  const rank_t my_world = comm.global_of(comm.rank());
  return comm.split(topology.cpu_of(my_world), comm.rank());
}

}  // namespace minimpi
