// topology.hpp — SMP-node topology of a job (paper §9 further work (a):
// "flexible way to handle SMP nodes, i.e., recognizing a 16-cpu SMP node
// could be carved into different number of MPI tasks").
//
// A Topology maps world ranks onto nodes.  The same 16-cpu node can be
// carved into 16 single-cpu tasks, 4 four-cpu tasks, or 1 task — the
// Topology records the chosen carving so components can build node-local
// communicators (cf. MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)) and make
// placement-aware decisions.
#pragma once

#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

class Topology {
 public:
  /// Flat topology: every rank is its own node (pure distributed memory —
  /// the default assumption of the paper's platforms).
  static Topology flat(int world_size);

  /// Uniform carving: consecutive ranks grouped `tasks_per_node` apiece;
  /// the last node may be smaller.
  static Topology uniform(int world_size, int tasks_per_node);

  /// Explicit per-node task counts (must sum to the world size).  This is
  /// the "different number of MPI tasks per node" case: e.g. a 16-cpu node
  /// carved into 4 tasks next to one carved into 16.
  static Topology from_node_sizes(const std::vector<int>& node_sizes);

  [[nodiscard]] int world_size() const noexcept {
    return static_cast<int>(node_of_.size());
  }
  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(node_base_.size());
  }

  /// Node hosting a world rank.
  [[nodiscard]] int node_of(rank_t world_rank) const;

  /// Rank's index within its node (0-based).
  [[nodiscard]] int cpu_of(rank_t world_rank) const;

  /// Number of tasks on a node.
  [[nodiscard]] int tasks_on_node(int node) const;

  /// World ranks of a node, ascending.
  [[nodiscard]] std::vector<rank_t> ranks_on_node(int node) const;

  /// True when two ranks share a node (shared-memory reachable).
  [[nodiscard]] bool same_node(rank_t a, rank_t b) const {
    return node_of(a) == node_of(b);
  }

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  std::vector<int> node_of_;    ///< world rank -> node
  std::vector<rank_t> node_base_;  ///< node -> first world rank
};

/// Split a communicator into node-local sub-communicators under a
/// topology: members of `comm` on the same node end up in one child,
/// ordered by their rank in `comm`.  Collective over `comm`.
[[nodiscard]] Comm split_by_node(const Comm& comm, const Topology& topology);

/// The complementary split: one child per node-local index, i.e. a
/// cross-node communicator of all "cpu k" ranks (useful for hierarchical
/// collectives).  Collective over `comm`.
[[nodiscard]] Comm split_across_nodes(const Comm& comm,
                                      const Topology& topology);

}  // namespace minimpi
