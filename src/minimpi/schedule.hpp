// schedule.hpp — the scheduler hook layer of minimpi.
//
// Every potentially-blocking communication decision point (mailbox match,
// wildcard ANY_SOURCE resolution, probe, nonblocking poll, wait) reports to
// the Job's Scheduler.  The base class here is the *pass-through* scheduler:
// every hook is an inline no-op and the hot paths guard the calls with a
// null-pointer check, so a job without a scheduler pays nothing.
//
// The verify scheduler (src/minimpi/verify/) overrides the hooks to
// serialize wildcard match choices: a rank reaching a wildcard receive is
// *held* in resolve_wildcard() until every other rank is provably unable to
// produce further candidates, at which point the exploration engine picks
// the matched sender explicitly.  See DESIGN.md §10.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/minimpi/types.hpp"

namespace minimpi {

class Job;

/// Vector-clock stamp a verifying scheduler attaches to an envelope at send
/// time (component i = sends rank i had issued when this send happened).
/// Null whenever verification is off — an Envelope then costs one unused
/// shared_ptr, nothing more.
using ClockStamp = std::shared_ptr<const std::vector<std::uint64_t>>;

/// Pass-through scheduler and hook vocabulary.  All hooks are called from
/// rank threads; implementations must be thread safe.  Locking contract:
/// hooks marked "under the mailbox mutex" may take the scheduler's own
/// mutex (mailbox -> scheduler is the sanctioned lock order) but a
/// scheduler must never acquire a mailbox mutex while holding its own.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// True for schedulers that serialize match decisions (the verify
  /// scheduler).  Mailboxes consult this once at construction.
  [[nodiscard]] virtual bool verifying() const noexcept { return false; }

  /// Attach the owning job.  Called once by the Job constructor after the
  /// mailboxes exist.
  virtual void bind(Job* job) { (void)job; }

  /// Park any helper threads.  Idempotent; called by the launcher after
  /// every rank joined and again by ~Job.
  virtual void stop() {}

  // --- rank lifecycle (launcher) -------------------------------------------

  virtual void rank_started(rank_t world_rank) { (void)world_rank; }
  /// Also called when a rank unwinds with an exception: a finished rank can
  /// never produce another send, which is what quiescence detection needs.
  virtual void rank_finished(rank_t world_rank) { (void)world_rank; }

  // --- send / delivery ------------------------------------------------------

  /// Sender side, before the destination mailbox is locked.  Returns the
  /// envelope's vector-clock stamp (null when not verifying).
  virtual ClockStamp on_send(rank_t src, rank_t dest, context_t ctx,
                             tag_t tag) {
    (void)src;
    (void)dest;
    (void)ctx;
    (void)tag;
    return nullptr;
  }

  /// Under the destination mailbox's mutex, on every delivery (the
  /// scheduler's delivery-epoch bump; see the quiescence argument in
  /// DESIGN.md §10).
  virtual void note_delivery(rank_t dest) { (void)dest; }

  /// A receive (blocking or posted) matched an envelope.  Called under the
  /// destination mailbox's mutex; `stamp` is the envelope's send clock.
  virtual void on_match(rank_t dest, rank_t src, context_t ctx, tag_t tag,
                        const ClockStamp& stamp) {
    (void)dest;
    (void)src;
    (void)ctx;
    (void)tag;
    (void)stamp;
  }

  // --- blocked / polling state (under the owner's mailbox mutex) -----------

  /// `owner` is blocked waiting for (waits_on, ctx, tag); registered after
  /// the first failed match check.
  virtual void note_blocked(rank_t owner, rank_t waits_on, const char* op,
                            context_t ctx, tag_t tag) {
    (void)owner;
    (void)waits_on;
    (void)op;
    (void)ctx;
    (void)tag;
  }

  /// The blocked owner's wait predicate failed again after a wakeup: it has
  /// examined every delivery so far and still matches nothing.
  virtual void note_still_blocked(rank_t owner) { (void)owner; }

  /// The blocked wait completed or unwound.
  virtual void note_unblocked(rank_t owner) { (void)owner; }

  /// `owner` took a nonblocking miss (iprobe with no match, test on an
  /// incomplete ticket) — it may be spinning rather than blocking.
  virtual void note_polling(rank_t owner) { (void)owner; }

  // --- decision points ------------------------------------------------------

  /// Wildcard fence: hold `owner`'s ANY_SOURCE receive/probe until the
  /// engine picks the sender it must match; returns the chosen world rank.
  /// Called *without* the mailbox mutex held.  The pass-through value
  /// any_source means "match whatever arrives first" (normal semantics).
  virtual rank_t resolve_wildcard(rank_t owner, context_t ctx, tag_t tag,
                                  const char* op) {
    (void)owner;
    (void)ctx;
    (void)tag;
    (void)op;
    return any_source;
  }

  /// Immediate decision for a nonblocking wildcard probe that matched more
  /// than one sender: pick from `candidates` (ascending world ranks).
  /// Called under the owner's mailbox mutex.
  virtual rank_t resolve_immediate(rank_t owner, context_t ctx, tag_t tag,
                                   const std::vector<rank_t>& candidates) {
    (void)owner;
    (void)ctx;
    (void)tag;
    return candidates.front();
  }
};

}  // namespace minimpi
