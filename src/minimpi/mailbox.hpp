// mailbox.hpp — per-rank message store with MPI matching semantics.
//
// Every rank of a job owns one Mailbox.  Senders call deliver() on the
// destination's mailbox; the owning rank blocks in recv()/probe() or posts
// asynchronous receives (post_recv) that a later deliver() completes in the
// sender's thread.  Matching follows MPI: a receive (source, tag) matches an
// envelope when context ids are equal and each of source/tag either equals
// the envelope's or is a wildcard; envelopes from the same (source, tag) are
// matched in arrival order (the MPI non-overtaking rule).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "src/minimpi/check.hpp"
#include "src/minimpi/error.hpp"
#include "src/minimpi/metrics.hpp"
#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/schedule.hpp"
#include "src/minimpi/trace.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

class FaultInjector;

/// A message in flight: routing key plus owned payload bytes.
/// `src` is always the *global* (world) rank of the sender; communicators
/// translate to local ranks at the API boundary.
struct Envelope {
  context_t context = kWorldContext;
  rank_t src = any_source;
  tag_t tag = any_tag;
  std::vector<std::byte> payload;
  /// Element-type signature of a typed send (empty for raw/control traffic);
  /// verified against the receive side when type checking is on.
  TypeSig sig{};
  /// Sender's vector clock at send time (null unless a verifying scheduler
  /// is active); drives the wildcard-race classification.
  ClockStamp vc;
  /// Trace flow id stamped at the send site (0 when tracing is off): the
  /// matching receive event records the same id, which is what lets
  /// mph_prof stitch cross-rank happens-before edges.
  std::uint64_t flow = 0;
};

/// Completion state of a posted (nonblocking) receive.  Shared between the
/// poster (who waits) and the delivering sender (who completes it).
/// All fields are protected by the owning Mailbox's mutex.
struct RecvTicket {
  bool done = false;
  Status status;                    ///< valid once done (source is global)
  std::exception_ptr error;         ///< set instead of status on failure
  // Posted pattern, kept for timeout diagnostics.
  context_t context = kWorldContext;
  rank_t source = any_source;
  tag_t tag = any_tag;
  /// Leak audit: flips when the request is waited/tested-done/cancelled, so
  /// each request is counted consumed at most once.
  bool accounted = false;
  /// Flow id of the envelope that completed this receive (0 until matched
  /// or when tracing is off) — recorded on the wait span.
  std::uint64_t flow = 0;
};

/// Deadline for blocking operations; Mailbox treats time_point::max() as
/// "wait forever".
using Deadline = std::chrono::steady_clock::time_point;

/// What Mailbox::drain found (and discarded) at teardown.
struct MailboxDrain {
  std::size_t envelopes = 0;       ///< queued, never-received messages
  std::size_t posted_recvs = 0;    ///< posted receives that never matched
};

class Mailbox {
 public:
  /// `abort_flag` / `abort_reason` belong to the owning Job; every blocking
  /// wait observes them so a failed rank unblocks the whole job.
  /// `owner_rank` is the world rank this mailbox belongs to and `faults`
  /// the job's injector (null when fault injection is off); both serve the
  /// deliver-side envelope hooks.  `checker` is the job's mpicheck registry
  /// (null when no checker is enabled): blocked waits register wait-for
  /// edges there and matched envelopes get their type signatures verified.
  /// `sched` is the job's scheduler (null = pass-through): decision points
  /// yield to it, and when it is *verifying* wildcard matches are resolved
  /// through explicit scheduler decisions instead of arrival order.
  /// `tracer` is the job's event tracer (null = tracing off): match points
  /// and blocked intervals record onto the owner rank's ring.  `metrics`
  /// is the job's mph_mon registry (null = monitoring off): send/recv
  /// counts, match latency, queue depth, and blocked time land there.
  Mailbox(const mph::atomic<bool>& abort_flag, const std::string& abort_reason,
          rank_t owner_rank = 0, FaultInjector* faults = nullptr,
          Checker* checker = nullptr, Scheduler* sched = nullptr,
          Tracer* tracer = nullptr, MetricsRegistry* metrics = nullptr)
      : abort_flag_(abort_flag),
        abort_reason_(abort_reason),
        owner_rank_(owner_rank),
        faults_(faults),
        checker_(checker),
        sched_(sched),
        tracer_(tracer),
        metrics_(metrics),
        verify_(sched != nullptr && sched->verifying()) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Attach a failure-domain abort flag/reason (ensemble member isolation):
  /// blocking waits then also unwind when just this rank's domain aborts.
  void set_domain(const mph::atomic<bool>* flag, const std::string* reason);

  /// Sender-side entry point: complete a matching posted receive or queue.
  /// Consults the fault injector first (drop/delay/truncate rules).
  void deliver(Envelope&& env);

  /// Blocking receive into a caller-owned buffer.  Throws Errc::truncation
  /// if the matched payload exceeds `buffer.size()`.  `expected` is the
  /// receive's element-type signature for the type checker (empty = raw).
  Status recv(context_t ctx, rank_t source, tag_t tag,
              std::span<std::byte> buffer, Deadline deadline,
              TypeSig expected = {});

  /// Blocking receive that takes ownership of the payload (used when the
  /// receiver does not know the size in advance).
  std::pair<Status, std::vector<std::byte>> recv_take(context_t ctx,
                                                      rank_t source, tag_t tag,
                                                      Deadline deadline,
                                                      TypeSig expected = {});

  /// Post an asynchronous receive.  The buffer must stay valid until the
  /// ticket completes.  May complete immediately if a message is queued.
  std::shared_ptr<RecvTicket> post_recv(context_t ctx, rank_t source,
                                        tag_t tag, std::span<std::byte> buffer,
                                        TypeSig expected = {});

  /// Block until `ticket` completes; rethrows any delivery error.
  Status wait(const std::shared_ptr<RecvTicket>& ticket, Deadline deadline);

  /// Nonblocking completion check; fills `out` when done.
  bool test(const std::shared_ptr<RecvTicket>& ticket, Status* out);

  /// Cancel a not-yet-matched posted receive (used on error unwind).
  void cancel(const std::shared_ptr<RecvTicket>& ticket);

  /// Blocking probe: wait for a matching message without consuming it.
  Status probe(context_t ctx, rank_t source, tag_t tag, Deadline deadline);

  /// Nonblocking probe.
  std::optional<Status> iprobe(context_t ctx, rank_t source, tag_t tag);

  /// Wake every waiter (called by Job::abort from any thread).
  void wake_all();

  /// Number of queued (unmatched) envelopes — for tests/diagnostics.
  [[nodiscard]] std::size_t queued() const;

  /// Largest queue_ size ever observed (backpressure high-water mark).
  [[nodiscard]] std::size_t queue_high_water() const;

  /// Wildcard (ANY_SOURCE) receive operations this rank issued.
  [[nodiscard]] std::uint64_t wildcard_recvs() const noexcept {
    return wildcard_recvs_.load(std::memory_order_relaxed);
  }

  /// Envelopes delivered to this mailbox per communicator context.
  [[nodiscard]] std::vector<std::pair<context_t, std::uint64_t>>
  delivered_by_context() const;

  /// Number of outstanding posted receives.
  [[nodiscard]] std::size_t posted() const;

  /// One matchable sender for a held wildcard receive: the first queued
  /// envelope from `src` matching the pattern (MPI non-overtaking makes it
  /// the only one that receive could match from that sender).
  struct WildcardCandidate {
    rank_t src = any_source;
    tag_t tag = any_tag;
    ClockStamp vc;  ///< the candidate send's vector clock (may be null)
  };

  /// Candidates of the wildcard pattern (ctx, ANY_SOURCE, tag): the first
  /// matching queued envelope of every distinct sender, ascending by sender
  /// rank.  Called by the verify scheduler's monitor thread while the owner
  /// rank is held at the wildcard fence.
  [[nodiscard]] std::vector<WildcardCandidate> wildcard_candidates(
      context_t ctx, tag_t tag) const;

  /// Discard every queued envelope and posted receive, reporting what
  /// leaked — the finalize()/teardown accounting pass.
  MailboxDrain drain();

 private:
  struct PostedRecv {
    context_t context;
    rank_t source;
    tag_t tag;
    std::span<std::byte> buffer;
    std::shared_ptr<RecvTicket> ticket;
    TypeSig expected{};  ///< receive-side type signature (empty = raw)
  };

  /// True when the (ctx,source,tag) pattern matches envelope `e`.
  static bool matches(context_t ctx, rank_t source, tag_t tag,
                      const Envelope& e) noexcept {
    return e.context == ctx && (source == any_source || source == e.src) &&
           (tag == any_tag || tag == e.tag);
  }

  /// Throws if the job (or this rank's failure domain) has aborted.
  /// Caller must hold `mutex_`.
  void check_abort_locked() const;

  /// Waits on the condition variable until `pred` or deadline/abort.
  /// Caller must hold `lock`.  Throws on timeout or abort; the timeout
  /// error names the unmatched (context, source, tag) pattern and the
  /// queued-envelope count so deadlocks identify the missing message.
  template <class Pred>
  void wait_locked(std::unique_lock<std::mutex>& lock, Deadline deadline,
                   Pred pred, const char* operation, context_t ctx,
                   rank_t source, tag_t tag);

  /// Find the first queued envelope matching the pattern. Caller holds lock.
  [[nodiscard]] std::deque<Envelope>::iterator find_locked(context_t ctx,
                                                           rank_t source,
                                                           tag_t tag);

  /// Verify a matched envelope's type signature against `expected`;
  /// returns the TypeMismatchError to raise, or null when compatible.
  /// Caller holds `mutex_`.
  [[nodiscard]] std::exception_ptr check_types_locked(
      const Envelope& env, const TypeSig& expected,
      std::size_t buffer_bytes) const;

  /// Consume `ticket` for the leak audit exactly once. Caller holds `mutex_`.
  void account_consumed_locked(RecvTicket& ticket) const;

  /// Verify-mode wildcard fence: when the pattern is ANY_SOURCE, hold the
  /// owner at the scheduler until a sender is chosen and return the exact
  /// source to match; otherwise return `source` unchanged.
  [[nodiscard]] rank_t fence_wildcard(context_t ctx, rank_t source, tag_t tag,
                                      const char* operation);

  /// Bump the delivered-per-context counter for `ctx`. Caller holds mutex_.
  void count_context_locked(context_t ctx);

  const mph::atomic<bool>& abort_flag_;
  const std::string& abort_reason_;
  rank_t owner_rank_;
  FaultInjector* faults_;
  Checker* checker_;
  Scheduler* sched_;
  Tracer* tracer_;
  MetricsRegistry* metrics_;
  bool verify_;  ///< sched_ != null and it serializes match decisions

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;          ///< unmatched arrivals, in order
  std::vector<PostedRecv> posted_;      ///< outstanding posted receives
  std::size_t queue_high_water_ = 0;    ///< max queue_ size ever seen
  /// Deliveries per context (few contexts per rank: linear scan under the
  /// deliver-side lock).
  std::vector<std::pair<context_t, std::uint64_t>> delivered_by_context_;
  mph::atomic<std::uint64_t> wildcard_recvs_{0};

  // Failure-domain abort channel (null until set_domain).
  const mph::atomic<bool>* domain_flag_ = nullptr;
  const std::string* domain_reason_ = nullptr;
};

}  // namespace minimpi
