#include "src/minimpi/mailbox.hpp"

#include <algorithm>
#include <cstring>

#include "src/minimpi/fault.hpp"

namespace minimpi {

namespace {

std::string pattern_string(context_t ctx, rank_t source, tag_t tag) {
  std::string out = "(context=" + std::to_string(ctx) + ", source=";
  out += source == any_source ? "*" : std::to_string(source);
  out += ", tag=";
  out += tag == any_tag ? "*" : std::to_string(tag);
  out += ")";
  return out;
}

}  // namespace

void Mailbox::set_domain(const mph::atomic<bool>* flag,
                         const std::string* reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  domain_flag_ = flag;
  domain_reason_ = reason;
}

void Mailbox::check_abort_locked() const {
  // Acquire pairs with Job::abort's release store: observing the flag
  // guarantees the write-once abort_reason_ is visible (the implicit
  // seq_cst load this replaces was stronger than the protocol needs on
  // this hot path; mph_racer litmus mailbox_abort_flag).
  if (abort_flag_.load(std::memory_order_acquire)) {
    throw AbortedError(abort_reason_);
  }
  if (domain_flag_ != nullptr &&
      domain_flag_->load(std::memory_order_acquire)) {
    throw AbortedError(*domain_reason_);
  }
}

template <class Pred>
void Mailbox::wait_locked(std::unique_lock<std::mutex>& lock, Deadline deadline,
                          Pred pred, const char* operation, context_t ctx,
                          rank_t source, tag_t tag) {
  // While blocked, this rank's wait-for edge lives in the checker's graph
  // and its blocked state in the scheduler.  Both are registered after the
  // first failed predicate check and refreshed after every later one — all
  // under `mutex_`, the same mutex deliver() bumps the epochs under, so
  // "seen == epoch" proves the waiter examined every delivery and matched
  // nothing.
  struct BlockedScope {
    Checker* checker;
    Scheduler* sched;
    Tracer* tracer;
    MetricsRegistry* metrics;
    rank_t owner;
    rank_t waits_on = any_source;
    context_t ctx = kWorldContext;
    tag_t tag = any_tag;
    const char* label = "";
    std::uint64_t t0 = 0;
    std::uint64_t t0_metrics = 0;
    bool registered = false;
    void blocked(rank_t on, const char* op, context_t c, tag_t t) {
      if (registered) {
        if (checker != nullptr) checker->refresh(owner);
        if (sched != nullptr) sched->note_still_blocked(owner);
        return;
      }
      if (checker != nullptr) checker->block(owner, on, op, c, t);
      if (sched != nullptr) sched->note_blocked(owner, on, op, c, t);
      if (tracer != nullptr) {
        // Blocked spans take the enclosing collective's label when one is
        // active ("barrier", "bcast", ...), the raw operation otherwise —
        // that label drives the recv-wait vs collective-wait breakdown.
        const char* scoped = ScopedCheckOp::current();
        label = scoped != nullptr ? scoped : op;
        waits_on = on;
        ctx = c;
        tag = t;
        t0 = tracer->now_ns();
      }
      if (metrics != nullptr) t0_metrics = metrics->note_block_start(owner);
      registered = true;
    }
    ~BlockedScope() {
      if (!registered) return;
      if (checker != nullptr) checker->unblock(owner);
      if (sched != nullptr) sched->note_unblocked(owner);
      if (tracer != nullptr) {
        tracer->span_end(owner, TraceOp::blocked, label, t0, waits_on, ctx,
                         tag);
      }
      if (metrics != nullptr) metrics->note_block_end(owner, t0_metrics);
    }
  } scope{checker_, sched_, tracer_, metrics_, owner_rank_};

  while (!pred()) {
    check_abort_locked();
    scope.blocked(source, operation, ctx, tag);
    if (deadline == Deadline::max()) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      if (pred()) return;
      scope.blocked(source, operation, ctx, tag);
      // Upgrade: when this rank sits on a confirmed wait-for cycle, report
      // the whole cycle instead of a bare timeout.
      if (checker_ != nullptr) {
        if (auto cycle = checker_->deadlock_cycle(owner_rank_)) {
          throw DeadlockError(*cycle);
        }
      }
      throw Error(Errc::timeout,
                  std::string("blocking ") + operation +
                      " exceeded the job receive timeout waiting for " +
                      pattern_string(ctx, source, tag) + "; " +
                      std::to_string(queue_.size()) +
                      " unmatched envelope(s) queued (likely deadlock: a "
                      "matching send was never issued)");
    }
  }
  check_abort_locked();
}

std::deque<Envelope>::iterator Mailbox::find_locked(context_t ctx,
                                                    rank_t source, tag_t tag) {
  return std::find_if(queue_.begin(), queue_.end(), [&](const Envelope& e) {
    return matches(ctx, source, tag, e);
  });
}

std::exception_ptr Mailbox::check_types_locked(const Envelope& env,
                                               const TypeSig& expected,
                                               std::size_t buffer_bytes) const {
  if (checker_ == nullptr) return nullptr;
  const auto mismatch =
      checker_->type_mismatch(env.sig, env.payload.size(), expected,
                              buffer_bytes, env.src, owner_rank_, env.context,
                              env.tag);
  if (!mismatch) return nullptr;
  return std::make_exception_ptr(TypeMismatchError(*mismatch));
}

void Mailbox::account_consumed_locked(RecvTicket& ticket) const {
  if (ticket.accounted) return;
  ticket.accounted = true;
  if (checker_ != nullptr) checker_->note_request_consumed(owner_rank_);
}

rank_t Mailbox::fence_wildcard(context_t ctx, rank_t source, tag_t tag,
                               const char* operation) {
  if (!verify_ || source != any_source) return source;
  // Hold the rank at the scheduler (no mailbox mutex held: the monitor
  // thread inspects this mailbox to enumerate candidates) until the
  // exploration engine picks the sender this wildcard must match.  The
  // subsequent exact-source match is deterministic: MPI non-overtaking
  // plus single-threaded senders fix the envelope a (src, tag) pattern
  // matches.
  return sched_->resolve_wildcard(owner_rank_, ctx, tag, operation);
}

void Mailbox::deliver(Envelope&& env) {
  // Sends are counted before the fault filter: an injected drop is still a
  // send the application issued, and the sender/delivered gap is exactly the
  // in-flight + dropped message count the monitor surfaces.
  if (metrics_ != nullptr) metrics_->on_send(env.src, env.payload.size());
  if (faults_ != nullptr &&
      faults_->filter(env, owner_rank_) == FaultInjector::Filter::drop) {
    return;  // injected message loss
  }
  // Vector-clock stamp for the send event (null unless verifying); taken
  // in the sender's thread before the destination mailbox is locked.
  if (sched_ != nullptr) {
    env.vc = sched_->on_send(env.src, owner_rank_, env.context, env.tag);
  }
  std::shared_ptr<RecvTicket> completed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Epoch bumps under the same mutex the owner's wait predicate runs
    // under: a blocked waiter whose seen-epoch equals the current epoch has
    // provably examined this (and every earlier) delivery.  note_send
    // additionally invalidates any iprobe-spin edge the *sender* held — it
    // is visibly making progress.
    if (checker_ != nullptr) {
      checker_->note_delivery(owner_rank_);
      checker_->note_send(env.src);
    }
    if (sched_ != nullptr) sched_->note_delivery(owner_rank_);
    count_context_locked(env.context);
    if (metrics_ != nullptr) {
      metrics_->on_delivered(owner_rank_, env.payload.size());
    }
    // Try to complete the earliest-posted matching receive.
    auto it = std::find_if(posted_.begin(), posted_.end(),
                           [&](const PostedRecv& p) {
                             return matches(p.context, p.source, p.tag, env);
                           });
    if (it != posted_.end()) {
      if (sched_ != nullptr) {
        sched_->on_match(owner_rank_, env.src, env.context, env.tag, env.vc);
      }
      if (tracer_ != nullptr) {
        // Posted-receive match on the receiver's timeline (recorded from
        // the sender's thread — the rings are multi-producer).
        tracer_->instant(owner_rank_, TraceOp::recv, "recv_match", env.src,
                         env.context, env.tag, env.payload.size(), env.flow);
      }
      PostedRecv p = std::move(*it);
      posted_.erase(it);
      if (std::exception_ptr bad =
              check_types_locked(env, p.expected, p.buffer.size())) {
        p.ticket->error = std::move(bad);
      } else if (env.payload.size() > p.buffer.size()) {
        p.ticket->error = std::make_exception_ptr(Error(
            Errc::truncation, "posted receive buffer of " +
                                  std::to_string(p.buffer.size()) +
                                  " bytes matched a message of " +
                                  std::to_string(env.payload.size()) +
                                  " bytes"));
      } else {
        if (!env.payload.empty()) {
          std::memcpy(p.buffer.data(), env.payload.data(), env.payload.size());
        }
        p.ticket->status =
            Status{env.src, env.tag, env.payload.size()};
      }
      p.ticket->flow = env.flow;
      p.ticket->done = true;
      completed = std::move(p.ticket);
    } else {
      queue_.push_back(std::move(env));
      queue_high_water_ = std::max(queue_high_water_, queue_.size());
      if (metrics_ != nullptr) {
        metrics_->set_queue_depth(owner_rank_, queue_.size());
      }
    }
  }
  cv_.notify_all();
  (void)completed;  // ticket completion is observed through the same cv
}

Status Mailbox::recv(context_t ctx, rank_t source, tag_t tag,
                     std::span<std::byte> buffer, Deadline deadline,
                     TypeSig expected) {
  if (source == any_source) {
    wildcard_recvs_.fetch_add(1, std::memory_order_relaxed);
  }
  // The tracer and the metrics registry keep separate clock epochs, so
  // each layer must start and stop the match-latency measurement with its
  // own clock — mixing them yields negative (wrapped) durations.
  const std::uint64_t t0 = tracer_ != nullptr ? tracer_->now_ns() : 0;
  const std::uint64_t t0_metrics =
      metrics_ != nullptr ? metrics_->now_ns() : 0;
  source = fence_wildcard(ctx, source, tag, "recv");
  std::unique_lock<std::mutex> lock(mutex_);
  std::deque<Envelope>::iterator it;
  wait_locked(
      lock, deadline,
      [&] {
        it = find_locked(ctx, source, tag);
        return it != queue_.end();
      },
      "recv", ctx, source, tag);
  if (sched_ != nullptr) {
    sched_->on_match(owner_rank_, it->src, ctx, it->tag, it->vc);
  }
  if (std::exception_ptr bad =
          check_types_locked(*it, expected, buffer.size())) {
    queue_.erase(it);
    std::rethrow_exception(bad);
  }
  if (it->payload.size() > buffer.size()) {
    throw Error(Errc::truncation,
                "receive buffer of " + std::to_string(buffer.size()) +
                    " bytes matched a message of " +
                    std::to_string(it->payload.size()) + " bytes");
  }
  if (!it->payload.empty()) {
    std::memcpy(buffer.data(), it->payload.data(), it->payload.size());
  }
  const Status status{it->src, it->tag, it->payload.size()};
  const std::uint64_t flow = it->flow;
  queue_.erase(it);
  if (tracer_ != nullptr) {
    tracer_->span_end(owner_rank_, TraceOp::recv, "recv", t0, status.source,
                      ctx, status.tag, status.bytes, flow);
  }
  if (metrics_ != nullptr) {
    metrics_->set_queue_depth(owner_rank_, queue_.size());
    metrics_->on_match(owner_rank_, metrics_->now_ns() - t0_metrics);
  }
  return status;
}

std::pair<Status, std::vector<std::byte>> Mailbox::recv_take(
    context_t ctx, rank_t source, tag_t tag, Deadline deadline,
    TypeSig expected) {
  if (source == any_source) {
    wildcard_recvs_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t t0 = tracer_ != nullptr ? tracer_->now_ns() : 0;
  const std::uint64_t t0_metrics =
      metrics_ != nullptr ? metrics_->now_ns() : 0;
  source = fence_wildcard(ctx, source, tag, "recv");
  std::unique_lock<std::mutex> lock(mutex_);
  std::deque<Envelope>::iterator it;
  wait_locked(
      lock, deadline,
      [&] {
        it = find_locked(ctx, source, tag);
        return it != queue_.end();
      },
      "recv", ctx, source, tag);
  if (sched_ != nullptr) {
    sched_->on_match(owner_rank_, it->src, ctx, it->tag, it->vc);
  }
  if (std::exception_ptr bad =
          check_types_locked(*it, expected, it->payload.size())) {
    queue_.erase(it);
    std::rethrow_exception(bad);
  }
  const Status status{it->src, it->tag, it->payload.size()};
  const std::uint64_t flow = it->flow;
  std::vector<std::byte> payload = std::move(it->payload);
  queue_.erase(it);
  if (tracer_ != nullptr) {
    tracer_->span_end(owner_rank_, TraceOp::recv, "recv", t0, status.source,
                      ctx, status.tag, status.bytes, flow);
  }
  if (metrics_ != nullptr) {
    metrics_->set_queue_depth(owner_rank_, queue_.size());
    metrics_->on_match(owner_rank_, metrics_->now_ns() - t0_metrics);
  }
  return {status, std::move(payload)};
}

std::shared_ptr<RecvTicket> Mailbox::post_recv(context_t ctx, rank_t source,
                                               tag_t tag,
                                               std::span<std::byte> buffer,
                                               TypeSig expected) {
  if (verify_ && source == any_source) {
    // A posted wildcard receive would be matched by arrival order inside
    // deliver(), outside the scheduler's decision points.  Exploration
    // would silently miss schedules; refuse instead (documented limit).
    throw Error(Errc::invalid_argument,
                "schedule verification does not support nonblocking wildcard "
                "receives (irecv with source=ANY_SOURCE); use a blocking "
                "recv or an exact source");
  }
  if (source == any_source) {
    wildcard_recvs_.fetch_add(1, std::memory_order_relaxed);
  }
  if (tracer_ != nullptr) {
    tracer_->instant(owner_rank_, TraceOp::post_recv, "post_recv", source, ctx,
                     tag, buffer.size());
  }
  auto ticket = std::make_shared<RecvTicket>();
  ticket->context = ctx;
  ticket->source = source;
  ticket->tag = tag;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (checker_ != nullptr) checker_->note_request_posted(owner_rank_);
    auto it = find_locked(ctx, source, tag);
    if (it != queue_.end()) {
      if (sched_ != nullptr) {
        sched_->on_match(owner_rank_, it->src, ctx, it->tag, it->vc);
      }
      if (std::exception_ptr bad =
              check_types_locked(*it, expected, buffer.size())) {
        ticket->error = std::move(bad);
      } else if (it->payload.size() > buffer.size()) {
        ticket->error = std::make_exception_ptr(Error(
            Errc::truncation, "posted receive buffer of " +
                                  std::to_string(buffer.size()) +
                                  " bytes matched a message of " +
                                  std::to_string(it->payload.size()) +
                                  " bytes"));
      } else {
        if (!it->payload.empty()) {
          std::memcpy(buffer.data(), it->payload.data(), it->payload.size());
        }
        ticket->status = Status{it->src, it->tag, it->payload.size()};
      }
      ticket->flow = it->flow;
      ticket->done = true;
      if (tracer_ != nullptr) {
        tracer_->instant(owner_rank_, TraceOp::recv, "recv_match",
                         ticket->status.source, ctx, ticket->status.tag,
                         ticket->status.bytes, ticket->flow);
      }
      queue_.erase(it);
      if (metrics_ != nullptr) {
        metrics_->set_queue_depth(owner_rank_, queue_.size());
      }
    } else {
      posted_.push_back(
          PostedRecv{ctx, source, tag, buffer, ticket, expected});
    }
  }
  return ticket;
}

Status Mailbox::wait(const std::shared_ptr<RecvTicket>& ticket,
                     Deadline deadline) {
  const std::uint64_t t0 = tracer_ != nullptr ? tracer_->now_ns() : 0;
  const std::uint64_t t0_metrics =
      metrics_ != nullptr ? metrics_->now_ns() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  wait_locked(
      lock, deadline, [&] { return ticket->done; }, "wait",
      ticket->context, ticket->source, ticket->tag);
  account_consumed_locked(*ticket);
  if (ticket->error) std::rethrow_exception(ticket->error);
  if (tracer_ != nullptr) {
    tracer_->span_end(owner_rank_, TraceOp::recv, "wait", t0,
                      ticket->status.source, ticket->context,
                      ticket->status.tag, ticket->status.bytes, ticket->flow);
  }
  if (metrics_ != nullptr) {
    metrics_->on_match(owner_rank_, metrics_->now_ns() - t0_metrics);
  }
  return ticket->status;
}

bool Mailbox::test(const std::shared_ptr<RecvTicket>& ticket, Status* out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Like iprobe: a test-spin loop must observe a job abort (e.g. the
  // deadlock checker reporting the very cycle this spin is part of), or
  // the spinning rank outlives the abort and the job never joins.
  check_abort_locked();
  if (!ticket->done) {
    // A test miss is a poll: register a *soft* wait-for edge (a spinning
    // wait_any loop deadlocks exactly like a blocking wait would) and tell
    // the scheduler the rank may be spinning rather than blocking.
    if (checker_ != nullptr) {
      checker_->iprobe_miss(owner_rank_, ticket->source, "test",
                            ticket->context, ticket->tag);
    }
    if (sched_ != nullptr) sched_->note_polling(owner_rank_);
    return false;
  }
  if (checker_ != nullptr) checker_->iprobe_hit(owner_rank_);
  account_consumed_locked(*ticket);
  if (ticket->error) std::rethrow_exception(ticket->error);
  if (out != nullptr) *out = ticket->status;
  return true;
}

void Mailbox::cancel(const std::shared_ptr<RecvTicket>& ticket) {
  const std::lock_guard<std::mutex> lock(mutex_);
  account_consumed_locked(*ticket);
  std::erase_if(posted_,
                [&](const PostedRecv& p) { return p.ticket == ticket; });
}

Status Mailbox::probe(context_t ctx, rank_t source, tag_t tag,
                      Deadline deadline) {
  if (source == any_source) {
    wildcard_recvs_.fetch_add(1, std::memory_order_relaxed);
  }
  source = fence_wildcard(ctx, source, tag, "probe");
  std::unique_lock<std::mutex> lock(mutex_);
  std::deque<Envelope>::iterator it;
  wait_locked(
      lock, deadline,
      [&] {
        it = find_locked(ctx, source, tag);
        return it != queue_.end();
      },
      "probe", ctx, source, tag);
  return Status{it->src, it->tag, it->payload.size()};
}

std::optional<Status> Mailbox::iprobe(context_t ctx, rank_t source, tag_t tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_abort_locked();
  if (verify_ && source == any_source) {
    // Nonblocking wildcard probe: cannot fence (iprobe must not block), but
    // the *choice among currently-queued senders* is still a decision the
    // engine must control and record.  A miss stays a miss.
    std::vector<rank_t> srcs;
    for (const Envelope& e : queue_) {
      if (matches(ctx, any_source, tag, e) &&
          std::find(srcs.begin(), srcs.end(), e.src) == srcs.end()) {
        srcs.push_back(e.src);
      }
    }
    if (!srcs.empty()) {
      std::sort(srcs.begin(), srcs.end());
      const rank_t chosen =
          srcs.size() == 1 ? srcs.front()
                           : sched_->resolve_immediate(owner_rank_, ctx, tag,
                                                       srcs);
      source = chosen;
    }
  }
  auto it = find_locked(ctx, source, tag);
  if (it == queue_.end()) {
    // Register a soft wait-for edge: an iprobe spin loop whose peer is
    // blocked waiting on *us* is a deadlock, and should be reported as a
    // cycle instead of timing out (or hanging).
    if (checker_ != nullptr) {
      checker_->iprobe_miss(owner_rank_, source, "iprobe", ctx, tag);
    }
    if (sched_ != nullptr) sched_->note_polling(owner_rank_);
    return std::nullopt;
  }
  if (checker_ != nullptr) checker_->iprobe_hit(owner_rank_);
  if (source == any_source) {
    // Counted on the hit only: a polling loop of misses is one logical
    // wildcard receive, not thousands.
    wildcard_recvs_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status{it->src, it->tag, it->payload.size()};
}

std::vector<Mailbox::WildcardCandidate> Mailbox::wildcard_candidates(
    context_t ctx, tag_t tag) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WildcardCandidate> out;
  for (const Envelope& e : queue_) {
    if (!matches(ctx, any_source, tag, e)) continue;
    const bool seen =
        std::any_of(out.begin(), out.end(),
                    [&](const WildcardCandidate& c) { return c.src == e.src; });
    if (!seen) out.push_back(WildcardCandidate{e.src, e.tag, e.vc});
  }
  std::sort(out.begin(), out.end(),
            [](const WildcardCandidate& a, const WildcardCandidate& b) {
              return a.src < b.src;
            });
  return out;
}

void Mailbox::wake_all() {
  // Lock/unlock pairs with waiters' predicate checks so none miss the abort.
  { const std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

std::size_t Mailbox::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t Mailbox::queue_high_water() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_high_water_;
}

void Mailbox::count_context_locked(context_t ctx) {
  for (auto& [context, count] : delivered_by_context_) {
    if (context == ctx) {
      ++count;
      return;
    }
  }
  delivered_by_context_.emplace_back(ctx, 1);
}

std::vector<std::pair<context_t, std::uint64_t>>
Mailbox::delivered_by_context() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return delivered_by_context_;
}

std::size_t Mailbox::posted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return posted_.size();
}

MailboxDrain Mailbox::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  MailboxDrain report;
  report.envelopes = queue_.size();
  report.posted_recvs = posted_.size();
  queue_.clear();
  posted_.clear();
  return report;
}

}  // namespace minimpi
