#include "src/minimpi/comm.hpp"

#include <algorithm>
#include <cstdint>
#include <thread>

namespace minimpi {

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

Status Request::wait() {
  if (immediate_done_) {
    immediate_done_ = false;
    return immediate_;
  }
  if (ticket_ == nullptr || state_ == nullptr) {
    throw Error(Errc::invalid_argument, "wait on an invalid/consumed request");
  }
  Mailbox& box = state_->job->mailbox(state_->to_global[static_cast<std::size_t>(
      state_->my_rank)]);
  Status status = box.wait(ticket_, state_->job->deadline());
  // Translate the envelope's world source into the communicator's ranks.
  if (status.source >= 0 &&
      status.source < static_cast<rank_t>(state_->to_local.size())) {
    status.source = state_->to_local[static_cast<std::size_t>(status.source)];
  }
  ticket_.reset();
  return status;
}

bool Request::test(Status* out) {
  if (immediate_done_) {
    if (out != nullptr) *out = immediate_;
    return true;
  }
  if (ticket_ == nullptr || state_ == nullptr) {
    throw Error(Errc::invalid_argument, "test on an invalid/consumed request");
  }
  Mailbox& box = state_->job->mailbox(state_->to_global[static_cast<std::size_t>(
      state_->my_rank)]);
  Status status;
  if (!box.test(ticket_, &status)) return false;
  if (status.source >= 0 &&
      status.source < static_cast<rank_t>(state_->to_local.size())) {
    status.source = state_->to_local[static_cast<std::size_t>(status.source)];
  }
  if (out != nullptr) *out = status;
  return true;
}

std::vector<Status> Request::wait_all(std::span<Request> requests) {
  std::vector<Status> statuses;
  statuses.reserve(requests.size());
  for (Request& r : requests) statuses.push_back(r.wait());
  return statuses;
}

std::size_t Request::wait_any(std::span<Request> requests, Status* out) {
  // Poll-with-yield: the mailbox condition variable belongs to single
  // tickets, and any completed request satisfies us.  Completion latency
  // here is bounded by the scheduler quantum, which is acceptable for the
  // waitany use cases (progress loops).
  Deadline deadline = Deadline::max();
  for (;;) {
    bool any_valid = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].valid()) continue;
      any_valid = true;
      if (requests[i].state_ != nullptr) {
        Job& job = *requests[i].state_->job;
        if (job.aborted()) throw AbortedError(job.abort_reason());
        if (deadline == Deadline::max()) deadline = job.deadline();
      }
      Status status;
      if (requests[i].test(&status)) {
        requests[i].wait();  // consume (immediate: already complete)
        if (out != nullptr) *out = status;
        return i;
      }
    }
    if (!any_valid) {
      throw Error(Errc::invalid_argument,
                  "wait_any: no valid (unconsumed) request in the set");
    }
    if (std::chrono::steady_clock::now() > deadline) {
      throw Error(Errc::timeout, "wait_any exceeded the job receive timeout");
    }
    std::this_thread::yield();
  }
}

bool Request::test_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid() && !r.test(nullptr)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Comm: construction and accessors
// ---------------------------------------------------------------------------

Comm Comm::world(std::shared_ptr<Job> job, rank_t my_world_rank) {
  if (job == nullptr) {
    throw Error(Errc::invalid_argument, "world() requires a job");
  }
  const int n = job->world_size();
  if (my_world_rank < 0 || my_world_rank >= n) {
    throw Error(Errc::invalid_rank,
                "world rank " + std::to_string(my_world_rank) +
                    " outside job of size " + std::to_string(n));
  }
  std::vector<rank_t> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
  return from_group(std::move(job), kWorldContext, std::move(identity),
                    my_world_rank);
}

detail::CommState::~CommState() {
  if (job == nullptr || context == kWorldContext) return;
  if (Checker* ck = job->checker()) {
    if (my_rank >= 0 &&
        my_rank < static_cast<rank_t>(to_global.size())) {
      ck->note_comm_destroyed(to_global[static_cast<std::size_t>(my_rank)]);
    }
  }
}

Comm Comm::from_group(std::shared_ptr<Job> job, context_t context,
                      std::vector<rank_t> to_global, rank_t my_world_rank) {
  auto state = std::make_shared<detail::CommState>();
  state->job = std::move(job);
  state->context = context;
  state->to_global = std::move(to_global);
  state->to_local.assign(static_cast<std::size_t>(state->job->world_size()),
                         -1);
  rank_t my_local = -1;
  for (std::size_t i = 0; i < state->to_global.size(); ++i) {
    const rank_t g = state->to_global[i];
    if (g < 0 || g >= state->job->world_size()) {
      throw Error(Errc::internal, "communicator group contains world rank " +
                                      std::to_string(g));
    }
    if (state->to_local[static_cast<std::size_t>(g)] != -1) {
      throw Error(Errc::internal,
                  "communicator group repeats world rank " + std::to_string(g));
    }
    state->to_local[static_cast<std::size_t>(g)] = static_cast<rank_t>(i);
    if (g == my_world_rank) my_local = static_cast<rank_t>(i);
  }
  if (my_local < 0) {
    throw Error(Errc::internal,
                "constructing a communicator that does not contain the "
                "calling rank");
  }
  state->my_rank = my_local;
  if (context != kWorldContext) {
    if (Checker* ck = state->job->checker()) {
      ck->note_comm_created(my_world_rank);
    }
    if (Tracer* tr = state->job->tracer()) {
      tr->instant(my_world_rank, TraceOp::comm_create, "comm_create",
                  any_source, context, any_tag,
                  state->to_global.size());
    }
  }
  return Comm(std::move(state));
}

detail::CommState& Comm::state() const {
  if (s_ == nullptr) {
    throw Error(Errc::invalid_comm, "operation on a null communicator");
  }
  return *s_;
}

rank_t Comm::rank() const { return state().my_rank; }

int Comm::size() const {
  return static_cast<int>(state().to_global.size());
}

context_t Comm::context() const { return state().context; }

Job& Comm::job() const { return *state().job; }

std::shared_ptr<Job> Comm::job_ptr() const { return state().job; }

rank_t Comm::global_of(rank_t local) const {
  return require_member_global(local, "rank");
}

rank_t Comm::local_of(rank_t world_rank) const noexcept {
  if (s_ == nullptr) return -1;
  if (world_rank < 0 ||
      world_rank >= static_cast<rank_t>(s_->to_local.size())) {
    return -1;
  }
  return s_->to_local[static_cast<std::size_t>(world_rank)];
}

const std::vector<rank_t>& Comm::group() const { return state().to_global; }

rank_t Comm::require_member_global(rank_t local, const char* what) const {
  detail::CommState& st = state();
  if (local < 0 || local >= static_cast<rank_t>(st.to_global.size())) {
    throw Error(Errc::invalid_rank,
                std::string(what) + " " + std::to_string(local) +
                    " outside communicator of size " +
                    std::to_string(st.to_global.size()));
  }
  return st.to_global[static_cast<std::size_t>(local)];
}

void Comm::check_user_tag(tag_t tag) {
  if (tag < 0 || tag > kMaxUserTag) {
    throw Error(Errc::invalid_tag,
                "user tag " + std::to_string(tag) + " outside [0, " +
                    std::to_string(kMaxUserTag) + "]");
  }
}

void Comm::check_user_tag_or_any(tag_t tag) {
  if (tag == any_tag) return;
  check_user_tag(tag);
}

tag_t Comm::next_collective_tag() const {
  detail::CommState& st = state();
  const std::uint32_t seq = st.collective_seq++;
  return kCollectiveTagBase + static_cast<tag_t>(seq % (1u << 23));
}

void Comm::check_collective(const char* op, rank_t root, std::uint64_t count,
                            std::uint32_t elem_size) const {
  detail::CommState& st = state();
  Checker* ck = st.job->checker();
  if (ck == nullptr || !ck->options().collectives) return;
  // Slot key: (context, group leader, this rank's collective sequence).
  // The leader disambiguates disjoint children of one split sharing a
  // context; the sequence is read *before* next_collective_tag() advances
  // it, so all members of the same invocation land on the same slot.
  ck->on_collective(st.context, st.to_global.front(), st.collective_seq, op,
                    root, count, elem_size,
                    static_cast<int>(st.to_global.size()),
                    st.to_global[static_cast<std::size_t>(st.my_rank)]);
}

void Comm::fault_point(KillPoint point) const {
  detail::CommState& st = state();
  if (FaultInjector* f = st.job->faults()) {
    f->on_point(point, st.to_global[static_cast<std::size_t>(st.my_rank)]);
  }
}

void Comm::fault_checkpoint(std::uint64_t step) const {
  detail::CommState& st = state();
  if (FaultInjector* f = st.job->faults()) {
    f->on_point(KillPoint::step,
                st.to_global[static_cast<std::size_t>(st.my_rank)], step);
  }
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Comm::send_raw(std::span<const std::byte> bytes, rank_t dest, tag_t tag,
                    TypeSig sig) const {
  detail::CommState& st = state();
  const rank_t dest_global = require_member_global(dest, "destination");
  fault_point(KillPoint::before_send);
  Envelope env;
  env.context = st.context;
  env.src = st.to_global[static_cast<std::size_t>(st.my_rank)];
  env.tag = tag;
  env.sig = sig;
  env.payload.assign(bytes.begin(), bytes.end());
  st.job->count_message(env.payload.size());
  if (Tracer* tr = st.job->tracer()) {
    env.flow = tr->next_flow(env.src);
    tr->instant(env.src, TraceOp::send, "send", dest_global, st.context, tag,
                env.payload.size(), env.flow);
  }
  st.job->mailbox(dest_global).deliver(std::move(env));
  fault_point(KillPoint::after_send);
}

Status Comm::recv_raw(std::span<std::byte> buffer, rank_t source, tag_t tag,
                      TypeSig expected) const {
  detail::CommState& st = state();
  const rank_t src_global =
      source == any_source ? any_source
                           : require_member_global(source, "source");
  fault_point(KillPoint::before_recv);
  Mailbox& box =
      st.job->mailbox(st.to_global[static_cast<std::size_t>(st.my_rank)]);
  Status status = box.recv(st.context, src_global, tag, buffer,
                           st.job->deadline(), expected);
  fault_point(KillPoint::after_recv);
  status.source = st.to_local[static_cast<std::size_t>(status.source)];
  return status;
}

std::pair<Status, std::vector<std::byte>> Comm::recv_take_raw(
    rank_t source, tag_t tag, TypeSig expected) const {
  detail::CommState& st = state();
  const rank_t src_global =
      source == any_source ? any_source
                           : require_member_global(source, "source");
  fault_point(KillPoint::before_recv);
  Mailbox& box =
      st.job->mailbox(st.to_global[static_cast<std::size_t>(st.my_rank)]);
  auto [status, payload] = box.recv_take(st.context, src_global, tag,
                                         st.job->deadline(), expected);
  fault_point(KillPoint::after_recv);
  status.source = st.to_local[static_cast<std::size_t>(status.source)];
  return {status, std::move(payload)};
}

Request Comm::isend_raw(std::span<const std::byte> bytes, rank_t dest,
                        tag_t tag, TypeSig sig) const {
  // Eager protocol: the payload is buffered at initiation, so the send is
  // already complete from the sender's perspective (cf. MPI_Ibsend).
  send_raw(bytes, dest, tag, sig);
  Request r;
  r.immediate_done_ = true;
  r.immediate_ = Status{dest, tag, bytes.size()};
  return r;
}

Request Comm::irecv_raw(std::span<std::byte> buffer, rank_t source, tag_t tag,
                        TypeSig expected) const {
  detail::CommState& st = state();
  const rank_t src_global =
      source == any_source ? any_source
                           : require_member_global(source, "source");
  fault_point(KillPoint::before_recv);
  Mailbox& box =
      st.job->mailbox(st.to_global[static_cast<std::size_t>(st.my_rank)]);
  Request r;
  r.state_ = s_;
  r.ticket_ = box.post_recv(st.context, src_global, tag, buffer, expected);
  return r;
}

Status Comm::sendrecv_raw(std::span<const std::byte> send_bytes, rank_t dest,
                          tag_t send_tag, std::span<std::byte> recv_buffer,
                          rank_t source, tag_t recv_tag, TypeSig send_sig,
                          TypeSig recv_expected) const {
  Request rx = irecv_raw(recv_buffer, source, recv_tag, recv_expected);
  send_raw(send_bytes, dest, send_tag, send_sig);
  return rx.wait();
}

Status Comm::probe(rank_t source, tag_t tag) const {
  detail::CommState& st = state();
  const rank_t src_global =
      source == any_source ? any_source
                           : require_member_global(source, "source");
  Mailbox& box =
      st.job->mailbox(st.to_global[static_cast<std::size_t>(st.my_rank)]);
  Status status = box.probe(st.context, src_global, tag, st.job->deadline());
  status.source = st.to_local[static_cast<std::size_t>(status.source)];
  return status;
}

std::optional<Status> Comm::iprobe(rank_t source, tag_t tag) const {
  detail::CommState& st = state();
  const rank_t src_global =
      source == any_source ? any_source
                           : require_member_global(source, "source");
  Mailbox& box =
      st.job->mailbox(st.to_global[static_cast<std::size_t>(st.my_rank)]);
  std::optional<Status> status = box.iprobe(st.context, src_global, tag);
  if (status.has_value()) {
    status->source = st.to_local[static_cast<std::size_t>(status->source)];
  }
  return status;
}

// ---------------------------------------------------------------------------
// Communicator creation
// ---------------------------------------------------------------------------

namespace {
/// (color, key, world rank) triple exchanged during split.
struct SplitEntry {
  int color;
  int key;
  rank_t world_rank;
};
}  // namespace

Comm Comm::split(int color, int key) const {
  // Count is rank-varying by design (color/key differ per member), so only
  // op/root consistency is checked.
  check_collective("split", -1, Checker::kUncheckedCount, 0);
  const ScopedCheckOp op("split");
  const TraceSpan span(state().job->tracer(),
                       state().to_global[static_cast<std::size_t>(
                           state().my_rank)],
                       TraceOp::collective, "split");
  fault_point(KillPoint::before_split);
  Comm result = split_impl(color, key);
  fault_point(KillPoint::after_split);
  return result;
}

Comm Comm::split_impl(int color, int key) const {
  detail::CommState& st = state();
  const tag_t tag = next_collective_tag();
  const int n = static_cast<int>(st.to_global.size());
  const rank_t my_world = st.to_global[static_cast<std::size_t>(st.my_rank)];

  // Phase 1: local rank 0 gathers every member's (color, key).
  // Phase 2: rank 0 allocates one fresh context (children are disjoint, so
  //          they can share it) and sends each member its ordered group.
  // Linear algorithms are deliberate: split runs once at startup and the
  // simple code is robust; see bench_handshake for measured cost.
  if (st.my_rank == 0) {
    std::vector<SplitEntry> entries(static_cast<std::size_t>(n));
    entries[0] = SplitEntry{color, key, my_world};
    for (int r = 1; r < n; ++r) {
      SplitEntry e{};
      recv_raw(std::as_writable_bytes(std::span<SplitEntry>(&e, 1)), r, tag);
      entries[static_cast<std::size_t>(r)] = e;
    }
    const context_t child_context = st.job->allocate_context(my_world);

    // Build each member's reply: [context, group size, ordered world ranks].
    // A child group contains the members sharing that color, ordered by
    // (key, parent rank); stable_sort over parent order gives the tiebreak.
    auto build_reply = [&](int member) {
      const SplitEntry& who = entries[static_cast<std::size_t>(member)];
      std::vector<std::int32_t> reply;
      if (who.color == undefined) {
        reply = {static_cast<std::int32_t>(child_context), 0};
        return reply;
      }
      std::vector<int> members;
      for (int i = 0; i < n; ++i) {
        if (entries[static_cast<std::size_t>(i)].color == who.color) {
          members.push_back(i);
        }
      }
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return entries[static_cast<std::size_t>(a)].key <
               entries[static_cast<std::size_t>(b)].key;
      });
      reply.reserve(members.size() + 2);
      reply.push_back(static_cast<std::int32_t>(child_context));
      reply.push_back(static_cast<std::int32_t>(members.size()));
      for (int m : members) {
        reply.push_back(static_cast<std::int32_t>(
            entries[static_cast<std::size_t>(m)].world_rank));
      }
      return reply;
    };

    for (int r = 1; r < n; ++r) {
      const std::vector<std::int32_t> reply = build_reply(r);
      send_raw(std::as_bytes(std::span<const std::int32_t>(reply)), r, tag);
    }
    const std::vector<std::int32_t> mine = build_reply(0);
    if (mine[1] == 0) return Comm{};
    std::vector<rank_t> group(mine.begin() + 2, mine.end());
    return from_group(st.job, child_context, std::move(group), my_world);
  }

  // Non-root members.
  const SplitEntry e{color, key, my_world};
  send_raw(std::as_bytes(std::span<const SplitEntry>(&e, 1)), 0, tag);
  auto [status, bytes] = recv_take_raw(0, tag);
  (void)status;
  const auto* data = reinterpret_cast<const std::int32_t*>(bytes.data());
  const std::size_t count = bytes.size() / sizeof(std::int32_t);
  if (count < 2) {
    throw Error(Errc::internal, "malformed split reply");
  }
  const context_t ctx = static_cast<context_t>(data[0]);
  const int group_size = data[1];
  if (group_size == 0) return Comm{};
  std::vector<rank_t> group(data + 2, data + 2 + group_size);
  return from_group(st.job, ctx, std::move(group), my_world);
}

Comm Comm::dup() const {
  check_collective("dup", 0, 1, sizeof(context_t));
  const ScopedCheckOp op("dup");
  detail::CommState& st = state();
  const TraceSpan span(
      st.job->tracer(),
      st.to_global[static_cast<std::size_t>(st.my_rank)],
      TraceOp::collective, "dup");
  const tag_t tag = next_collective_tag();
  const int n = static_cast<int>(st.to_global.size());
  const rank_t my_world = st.to_global[static_cast<std::size_t>(st.my_rank)];
  context_t ctx = 0;
  if (st.my_rank == 0) {
    ctx = st.job->allocate_context(my_world);
    for (int r = 1; r < n; ++r) {
      send_raw(std::as_bytes(std::span<const context_t>(&ctx, 1)), r, tag);
    }
  } else {
    recv_raw(std::as_writable_bytes(std::span<context_t>(&ctx, 1)), 0, tag);
  }
  return from_group(st.job, ctx, st.to_global, my_world);
}

Comm Comm::create(std::span<const rank_t> local_ranks) const {
  detail::CommState& st = state();
  const int n = static_cast<int>(st.to_global.size());
  int key = undefined;
  for (std::size_t i = 0; i < local_ranks.size(); ++i) {
    const rank_t r = local_ranks[i];
    if (r < 0 || r >= n) {
      throw Error(Errc::invalid_rank,
                  "create(): rank " + std::to_string(r) +
                      " outside communicator of size " + std::to_string(n));
    }
    if (r == st.my_rank) key = static_cast<int>(i);
  }
  return split(key == undefined ? undefined : 0, key == undefined ? 0 : key);
}

Comm Comm::create_ordered_world(std::span<const rank_t> world_ranks) const {
  detail::CommState& st = state();
  if (st.context != kWorldContext) {
    throw Error(Errc::invalid_comm,
                "create_ordered_world requires a COMM_WORLD handle");
  }
  if (world_ranks.empty()) {
    throw Error(Errc::invalid_argument, "create_ordered_world: empty group");
  }
  const rank_t my_world = st.to_global[static_cast<std::size_t>(st.my_rank)];
  const rank_t leader = world_ranks.front();
  const tag_t ctx_tag = kControlTagBase + 1;

  context_t ctx = 0;
  if (my_world == leader) {
    ctx = st.job->allocate_context(my_world);
    for (rank_t member : world_ranks.subspan(1)) {
      st.job->control_send(
          my_world, member, ctx_tag,
          std::as_bytes(std::span<const context_t>(&ctx, 1)));
    }
  } else {
    Mailbox& box = st.job->mailbox(my_world);
    box.recv(kWorldContext, leader, ctx_tag,
             std::as_writable_bytes(std::span<context_t>(&ctx, 1)),
             st.job->deadline());
  }
  return from_group(st.job, ctx,
                    std::vector<rank_t>(world_ranks.begin(), world_ranks.end()),
                    my_world);
}

}  // namespace minimpi
