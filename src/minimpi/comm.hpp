// comm.hpp — communicators, typed point-to-point, and nonblocking requests.
//
// A Comm is a per-rank handle onto a communication context: (job, context
// id, my local rank, local↔global rank maps).  Handles are cheap to copy
// (shared state).  Contexts isolate traffic exactly like MPI communicator
// contexts: a message sent on one communicator can only be matched by a
// receive on a communicator with the same context id.
//
// Creation calls (split/dup/create) are collective over the parent; they
// are implemented with the substrate's own collectives (see
// collectives.hpp), matching how real MPI implementations bootstrap
// MPI_Comm_split from point-to-point.
#pragma once

#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/minimpi/error.hpp"
#include "src/minimpi/job.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

class Comm;

namespace detail {
/// Shared, immutable-after-construction communicator state (one instance
/// per rank per communicator; the collective sequence number is the only
/// mutable member and is only touched by the owning rank's thread).
struct CommState {
  std::shared_ptr<Job> job;
  context_t context = kWorldContext;
  rank_t my_rank = 0;                 ///< local rank in this communicator
  std::vector<rank_t> to_global;      ///< local rank -> world rank
  std::vector<rank_t> to_local;       ///< world rank -> local rank, -1 absent
  std::uint32_t collective_seq = 0;   ///< advanced once per collective call

  CommState() = default;
  CommState(const CommState&) = delete;
  CommState& operator=(const CommState&) = delete;
  /// Releases the communicator in the leak audit (world handles are
  /// substrate-owned and not audited).
  ~CommState();
};
}  // namespace detail

/// Handle to an outstanding nonblocking operation.  Eagerly-buffered sends
/// complete at initiation; receives complete when a matching message is
/// delivered.  Status sources are reported in the initiating communicator's
/// local ranks.
class Request {
 public:
  Request() = default;

  [[nodiscard]] bool valid() const noexcept {
    return immediate_done_ || ticket_ != nullptr;
  }

  /// Block until complete; returns the receive status (sends report their
  /// own destination/tag).  A Request may be waited at most once.
  Status wait();

  /// Nonblocking completion check; fills `out` when complete.
  bool test(Status* out = nullptr);

  /// Wait for every request; statuses returned in argument order.
  static std::vector<Status> wait_all(std::span<Request> requests);

  /// Block until at least one request completes; returns its index (the
  /// lowest-indexed completed one) and fills `out`.  Mirrors MPI_Waitany.
  /// Throws when every request is invalid/consumed.
  static std::size_t wait_any(std::span<Request> requests,
                              Status* out = nullptr);

  /// True when every request is complete (consuming none).
  static bool test_all(std::span<Request> requests);

 private:
  friend class Comm;
  std::shared_ptr<detail::CommState> state_;  ///< for deadline + translation
  std::shared_ptr<RecvTicket> ticket_;        ///< null for immediate ops
  Status immediate_{};
  bool immediate_done_ = false;
};

class Comm {
 public:
  /// Null communicator (mirrors MPI_COMM_NULL); most operations throw.
  Comm() = default;

  /// COMM_WORLD handle for `my_world_rank` of `job` (called by the
  /// launcher once per rank-thread).
  static Comm world(std::shared_ptr<Job> job, rank_t my_world_rank);

  [[nodiscard]] bool valid() const noexcept { return s_ != nullptr; }
  [[nodiscard]] rank_t rank() const;
  [[nodiscard]] int size() const;
  [[nodiscard]] context_t context() const;
  [[nodiscard]] Job& job() const;
  [[nodiscard]] std::shared_ptr<Job> job_ptr() const;

  /// World rank of a local rank.
  [[nodiscard]] rank_t global_of(rank_t local) const;
  /// Local rank of a world rank, or -1 when not a member.
  [[nodiscard]] rank_t local_of(rank_t world_rank) const noexcept;
  /// Full local→world map (the communicator's group).
  [[nodiscard]] const std::vector<rank_t>& group() const;

  // --- typed blocking point-to-point -------------------------------------

  template <Transferable T>
  void send(const T& value, rank_t dest, tag_t tag) const {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  template <Transferable T>
  void send(std::span<const T> values, rank_t dest, tag_t tag) const {
    check_user_tag(tag);
    send_raw(std::as_bytes(values), dest, tag, type_sig<T>());
  }

  template <Transferable T>
  Status recv(T& value, rank_t source, tag_t tag) const {
    return recv(std::span<T>(&value, 1), source, tag);
  }

  template <Transferable T>
  Status recv(std::span<T> values, rank_t source, tag_t tag) const {
    check_user_tag_or_any(tag);
    return recv_raw(std::as_writable_bytes(values), source, tag,
                    type_sig<T>());
  }

  /// Receive a message of unknown length; element count comes from the
  /// returned status.
  template <Transferable T>
  std::vector<T> recv_vector(rank_t source, tag_t tag,
                             Status* out = nullptr) const {
    check_user_tag_or_any(tag);
    auto [status, bytes] = recv_take_raw(source, tag, type_sig<T>());
    if (bytes.size() % sizeof(T) != 0) {
      throw Error(Errc::truncation,
                  "message of " + std::to_string(bytes.size()) +
                      " bytes is not a whole number of elements of size " +
                      std::to_string(sizeof(T)));
    }
    std::vector<T> values(bytes.size() / sizeof(T));
    if (!values.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
    if (out != nullptr) *out = status;
    return values;
  }

  /// Combined send+receive that cannot deadlock (receive is posted first).
  template <Transferable T>
  Status sendrecv(std::span<const T> send_values, rank_t dest, tag_t send_tag,
                  std::span<T> recv_values, rank_t source,
                  tag_t recv_tag) const {
    check_user_tag(send_tag);
    check_user_tag_or_any(recv_tag);
    return sendrecv_raw(std::as_bytes(send_values), dest, send_tag,
                        std::as_writable_bytes(recv_values), source, recv_tag,
                        type_sig<T>(), type_sig<T>());
  }

  /// In-place exchange (mirrors MPI_Sendrecv_replace): the buffer is sent
  /// to `dest` and overwritten with the message from `source`.
  template <Transferable T>
  Status sendrecv_replace(std::span<T> values, rank_t dest, tag_t send_tag,
                          rank_t source, tag_t recv_tag) const {
    // The eager send buffers the payload at initiation, so sending first
    // and receiving into the same storage is safe.
    check_user_tag(send_tag);
    check_user_tag_or_any(recv_tag);
    send_raw(std::as_bytes(values), dest, send_tag, type_sig<T>());
    return recv_raw(std::as_writable_bytes(values), source, recv_tag,
                    type_sig<T>());
  }

  // --- nonblocking --------------------------------------------------------

  template <Transferable T>
  Request isend(std::span<const T> values, rank_t dest, tag_t tag) const {
    check_user_tag(tag);
    return isend_raw(std::as_bytes(values), dest, tag, type_sig<T>());
  }

  template <Transferable T>
  Request irecv(std::span<T> values, rank_t source, tag_t tag) const {
    check_user_tag_or_any(tag);
    return irecv_raw(std::as_writable_bytes(values), source, tag,
                     type_sig<T>());
  }

  // --- probing -------------------------------------------------------------

  /// Block until a matching message is available (without receiving it).
  [[nodiscard]] Status probe(rank_t source, tag_t tag) const;
  /// Nonblocking probe.
  [[nodiscard]] std::optional<Status> iprobe(rank_t source, tag_t tag) const;

  // --- communicator creation (collective) ----------------------------------

  /// MPI_Comm_split: ranks with equal `color` form a new communicator,
  /// ordered by (key, parent rank).  `color == undefined` yields a null
  /// communicator for that rank.  Collective over this communicator.
  [[nodiscard]] Comm split(int color, int key) const;

  /// MPI_Comm_dup: same group, fresh context.  Collective.
  [[nodiscard]] Comm dup() const;

  /// MPI_Comm_create over an explicit local-rank list (order defines the
  /// new ranks).  Collective over this communicator; non-members receive a
  /// null communicator.
  [[nodiscard]] Comm create(std::span<const rank_t> local_ranks) const;

  /// Build a communicator over an explicit, ordered list of *world* ranks
  /// without a parent-wide collective: only the listed ranks participate
  /// (each passing an identical list).  This is how MPH_comm_join merges
  /// two components without involving the rest of the job.  `this` must be
  /// a world handle of the member rank.
  [[nodiscard]] Comm create_ordered_world(
      std::span<const rank_t> world_ranks) const;

  // --- raw byte interface (full tag range; collectives/control use this) ---
  // The optional TypeSig parameters carry the element type of the typed
  // wrappers down to the mailbox for mpicheck's type matching; raw callers
  // leave them empty and stay unchecked.

  void send_raw(std::span<const std::byte> bytes, rank_t dest, tag_t tag,
                TypeSig sig = {}) const;
  Status recv_raw(std::span<std::byte> buffer, rank_t source, tag_t tag,
                  TypeSig expected = {}) const;
  std::pair<Status, std::vector<std::byte>> recv_take_raw(
      rank_t source, tag_t tag, TypeSig expected = {}) const;
  Request isend_raw(std::span<const std::byte> bytes, rank_t dest, tag_t tag,
                    TypeSig sig = {}) const;
  Request irecv_raw(std::span<std::byte> buffer, rank_t source, tag_t tag,
                    TypeSig expected = {}) const;
  Status sendrecv_raw(std::span<const std::byte> send_bytes, rank_t dest,
                      tag_t send_tag, std::span<std::byte> recv_buffer,
                      rank_t source, tag_t recv_tag, TypeSig send_sig = {},
                      TypeSig recv_expected = {}) const;

  /// Fresh tag for one collective invocation; every member calls this the
  /// same number of times in the same order, so tags agree job-wide.
  [[nodiscard]] tag_t next_collective_tag() const;

  /// mpicheck hook: report this rank's next collective invocation
  /// (`op`, root as a *local* rank or -1 for rootless, element `count`
  /// or Checker::kUncheckedCount for rank-varying counts, element size)
  /// against the communicator's collective-consistency slot.  Must run
  /// *before* the matching next_collective_tag() call so the sequence
  /// numbers line up.  Throws CollectiveMismatchError on divergence;
  /// no-op when no checker is active.
  void check_collective(const char* op, rank_t root, std::uint64_t count,
                        std::uint32_t elem_size) const;

  // --- fault injection hooks ----------------------------------------------

  /// Fire the job's fault injector (if any) at `point` for this rank's
  /// world rank.  No-op without a configured FaultPlan; throws
  /// FaultInjectedError when a kill rule fires.  Collective algorithms and
  /// the point-to-point paths call this at their kill-points.
  void fault_point(KillPoint point) const;

  /// Application-defined checkpoint for KillPoint::step rules: "kill rank R
  /// at step N".  Drivers call this once per step/interval.
  void fault_checkpoint(std::uint64_t step) const;

  /// Equality = same underlying state object (same rank's same handle).
  [[nodiscard]] bool same_state(const Comm& other) const noexcept {
    return s_ == other.s_;
  }

 private:
  explicit Comm(std::shared_ptr<detail::CommState> state)
      : s_(std::move(state)) {}

  [[nodiscard]] detail::CommState& state() const;
  [[nodiscard]] Comm split_impl(int color, int key) const;
  [[nodiscard]] rank_t require_member_global(rank_t local,
                                             const char* what) const;
  static void check_user_tag(tag_t tag);
  static void check_user_tag_or_any(tag_t tag);

  /// Build the state for a child communicator given its ordered world-rank
  /// group and agreed context.
  [[nodiscard]] static Comm from_group(std::shared_ptr<Job> job,
                                       context_t context,
                                       std::vector<rank_t> to_global,
                                       rank_t my_world_rank);

  std::shared_ptr<detail::CommState> s_;
};

}  // namespace minimpi
