// fault.hpp — deterministic fault injection for minimpi jobs.
//
// A FaultPlan is a list of rules describing *where* a job should fail:
// kill a world rank at a named kill-point (the Nth time that rank reaches
// it), drop/delay a matching envelope, or truncate a payload in flight.
// The plan travels through JobOptions; when non-empty the Job owns a
// FaultInjector that every hooked code path consults.
//
// Determinism: rules pinned to a specific world rank fire at a fixed
// position in that rank's own (deterministic) operation sequence, so the
// same plan produces the same failing rank and operation on every run —
// the property the tests/faults suite asserts.  Rules with a wildcard
// victim fire on whichever rank reaches the hit count first and are only
// deterministic when a single rank can match.  FaultPlan::chaos_kill
// derives a pinned (rank, kill-point) pair from a seed for reproducible
// randomized robustness sweeps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/minimpi/error.hpp"
#include "src/minimpi/mailbox.hpp"
#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/types.hpp"
#include "src/util/rng.hpp"

namespace minimpi {

/// Places a kill rule can trigger.  `step` is an application-defined
/// checkpoint reached via Comm::fault_checkpoint(step); `entry`/`finish`
/// bracket the rank's entry-point function in the launcher.
enum class KillPoint {
  before_send,
  after_send,
  before_recv,
  after_recv,
  before_barrier,
  after_barrier,
  before_split,
  after_split,
  step,
  entry,
  finish,
};

[[nodiscard]] constexpr const char* kill_point_name(KillPoint p) noexcept {
  switch (p) {
    case KillPoint::before_send: return "before_send";
    case KillPoint::after_send: return "after_send";
    case KillPoint::before_recv: return "before_recv";
    case KillPoint::after_recv: return "after_recv";
    case KillPoint::before_barrier: return "before_barrier";
    case KillPoint::after_barrier: return "after_barrier";
    case KillPoint::before_split: return "before_split";
    case KillPoint::after_split: return "after_split";
    case KillPoint::step: return "step";
    case KillPoint::entry: return "entry";
    case KillPoint::finish: return "finish";
  }
  return "unknown";
}

/// Thrown by a fired kill rule; the launcher turns it into a structured
/// (rank, component, operation) abort.
class FaultInjectedError : public Error {
 public:
  FaultInjectedError(KillPoint point, rank_t world_rank)
      : Error(Errc::fault_injected,
              std::string("injected kill at ") + kill_point_name(point) +
                  " on world rank " + std::to_string(world_rank)),
        point_(point),
        world_rank_(world_rank) {}

  [[nodiscard]] KillPoint point() const noexcept { return point_; }
  [[nodiscard]] rank_t world_rank() const noexcept { return world_rank_; }

 private:
  KillPoint point_;
  rank_t world_rank_;
};

/// Wildcard context for envelope matching (real contexts start at 0 and
/// grow densely; the all-ones value is unreachable in practice).
inline constexpr context_t any_context = ~context_t{0};

/// Pattern selecting envelopes for drop/delay/truncate rules.  Every field
/// defaults to its wildcard.
struct EnvelopeMatch {
  context_t context = any_context;
  rank_t src = any_source;   ///< sender's world rank
  rank_t dest = any_source;  ///< receiver's world rank
  tag_t tag = any_tag;

  [[nodiscard]] bool matches(const Envelope& e, rank_t dest_rank) const noexcept {
    return (context == any_context || context == e.context) &&
           (src == any_source || src == e.src) &&
           (dest == any_source || dest == dest_rank) &&
           (tag == any_tag || tag == e.tag);
  }
};

/// One injected fault.
struct FaultRule {
  enum class Action { kill, drop, delay, truncate };
  Action action = Action::kill;

  // Kill rules.
  KillPoint point = KillPoint::before_send;
  rank_t victim = any_source;  ///< world rank, or any_source for any rank
  std::uint64_t step = 0;      ///< for KillPoint::step: the checkpoint index

  // Envelope rules.
  EnvelopeMatch match;
  std::chrono::milliseconds delay{0};
  /// Upper bound of a uniformly-drawn random addition to `delay`, taken
  /// from the injector's job-seeded stream (0 = no jitter).  The same job
  /// seed reproduces the same jitter sequence.
  std::chrono::milliseconds delay_jitter{0};
  std::size_t truncate_to = 0;

  /// Fire on the Nth matching visit (1-based); each rule fires once.
  std::uint64_t hit = 1;
};

/// A record of one fired rule, for post-mortem assertions.
struct FaultEvent {
  std::size_t rule_index = 0;
  rank_t world_rank = -1;  ///< victim (kill) or destination (envelope rules)
  std::string description;
};

class FaultPlan {
 public:
  /// Kill `victim` the `hit`th time it reaches `point`.
  FaultPlan& kill_at(KillPoint point, rank_t victim, std::uint64_t hit = 1);

  /// Kill `victim` when it reaches application checkpoint `step`
  /// (Comm::fault_checkpoint).
  FaultPlan& kill_at_step(rank_t victim, std::uint64_t step);

  /// Silently discard the `hit`th envelope matching `match`.
  FaultPlan& drop(EnvelopeMatch match, std::uint64_t hit = 1);

  /// Delay delivery of the `hit`th matching envelope by `by`, plus a
  /// uniformly random addition in [0, jitter] drawn from the job-seeded
  /// stream when `jitter` is nonzero.
  FaultPlan& delay(EnvelopeMatch match, std::chrono::milliseconds by,
                   std::uint64_t hit = 1,
                   std::chrono::milliseconds jitter = {});

  /// Truncate the payload of the `hit`th matching envelope to `bytes`.
  FaultPlan& truncate(EnvelopeMatch match, std::size_t bytes,
                      std::uint64_t hit = 1);

  /// Seed-deterministic single-kill plan: picks one world rank and one
  /// communication kill-point from `seed`.  Same seed, same victim and
  /// operation — the reproducible "random process death" of the fault
  /// suite.
  [[nodiscard]] static FaultPlan chaos_kill(std::uint64_t seed, int world_size);

  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] const std::vector<FaultRule>& rules() const noexcept {
    return rules_;
  }

 private:
  std::vector<FaultRule> rules_;
};

/// Runtime state of a plan within one Job.  Thread safe: rank threads call
/// on_point/filter concurrently.
class FaultInjector {
 public:
  /// `seed` feeds the injector's private random stream (delay jitter);
  /// the Job passes its resolved job seed so a replayed seed reproduces
  /// the exact same jitter values.
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0);

  /// Attach the job's event tracer (null = off): fired rules additionally
  /// record fault instants on the victim/sender rank's timeline.  Called
  /// once at Job construction, before any rank thread starts.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach the job's metrics registry (null = monitoring off): fired rules
  /// bump the victim/sender rank's fault counter so the live monitor shows
  /// injected faults as they land.  Called once at Job construction.
  void set_metrics(MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Virtual-time mode: delay rules fire (and are recorded in events())
  /// but never actually sleep.  The verify scheduler enables this — under
  /// systematic exploration, timing is decided by the explorer, not by
  /// wall-clock sleeps, and real sleeps would only slow every schedule
  /// down without changing which matchings are reachable.
  void set_virtual_time(bool on) noexcept {
    virtual_time_.store(on, std::memory_order_release);
  }

  /// Kill-point hook.  Throws FaultInjectedError when a kill rule fires.
  /// `step` is only meaningful for KillPoint::step.
  void on_point(KillPoint point, rank_t world_rank, std::uint64_t step = 0);

  enum class Filter { deliver, drop };

  /// Envelope hook, called by Mailbox::deliver in the *sender's* thread
  /// before the destination mailbox is locked.  May sleep (delay rules) and
  /// may shrink `env.payload` (truncate rules).
  Filter filter(Envelope& env, rank_t dest_world);

  /// Everything that fired so far.
  [[nodiscard]] std::vector<FaultEvent> events() const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  Tracer* tracer_ = nullptr;  ///< job's event tracer (null = tracing off)
  MetricsRegistry* metrics_ = nullptr;  ///< job's registry (null = off)
  mph::util::Rng rng_;                 ///< jitter stream (guarded by mutex_)
  mph::atomic<bool> virtual_time_{false};
  std::vector<std::uint64_t> visits_;  ///< per-rule matching-visit counts
  std::vector<bool> fired_;            ///< per-rule one-shot latch
  std::vector<FaultEvent> events_;
};

}  // namespace minimpi
