// collectives.hpp — collective operations over a Comm.
//
// Algorithms follow the classic implementations found in MPICH-era MPI
// libraries (the environment the paper ran on):
//   barrier      — dissemination (⌈log2 n⌉ rounds)
//   bcast        — binomial tree rooted at `root`
//   reduce       — binomial tree fold (mirror of bcast)
//   allreduce    — reduce to 0 + bcast
//   gather(v)    — linear to root
//   scatter      — linear from root
//   allgather(v) — ring (n-1 steps, each rank forwards its predecessor's
//                  latest block)
//   alltoall     — shifted pairwise exchange
//   scan         — linear chain (inclusive prefix)
//
// Every collective draws one fresh tag from the communicator's collective
// sequence, so consecutive collectives cannot cross-match even when ranks
// are skewed in time.  All functions must be called by every member of the
// communicator ("collective" in the MPI sense); violating that deadlocks —
// which the job's receive timeout converts into an error.
#pragma once

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/minimpi/reduce_ops.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

namespace detail {
/// Rotate so `root` appears as virtual rank 0 (binomial-tree helper).
[[nodiscard]] inline int virtual_rank(int rank, int root, int size) noexcept {
  return (rank - root + size) % size;
}
[[nodiscard]] inline int actual_rank(int vrank, int root, int size) noexcept {
  return (vrank + root) % size;
}

/// mpicheck instrumentation of one leaf collective: report this member's
/// (op, root, count, element size) to the consistency checker *before* the
/// collective draws its tag, and label any blocked waits inside with the
/// collective's name.  Constructed at the top of every collective that
/// calls next_collective_tag() itself.
struct CollectiveScope {
  ScopedCheckOp op;
  TraceSpan span;
  CollectiveScope(const Comm& comm, const char* name, rank_t root,
                  std::uint64_t count, std::uint32_t elem_size)
      : op(name),
        span(comm.job().tracer(), comm.global_of(comm.rank()),
             TraceOp::collective, name) {
    if (MetricsRegistry* m = comm.job().metrics()) {
      m->on_collective(comm.global_of(comm.rank()));
    }
    comm.check_collective(name, root, count, elem_size);
  }
};
}  // namespace detail

/// Synchronize all members (dissemination barrier).
inline void barrier(const Comm& comm) {
  const detail::CollectiveScope scope(comm, "barrier", -1, 0, 0);
  comm.fault_point(KillPoint::before_barrier);
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int r = comm.rank();
  const std::byte token{0};
  for (int k = 1; k < n; k <<= 1) {
    const rank_t to = (r + k) % n;
    const rank_t from = (r - k % n + n) % n;
    std::byte in{};
    comm.sendrecv_raw(std::span<const std::byte>(&token, 1), to, tag,
                      std::span<std::byte>(&in, 1), from, tag);
  }
  comm.fault_point(KillPoint::after_barrier);
}

/// Broadcast `values` from `root` to all members (binomial tree).
template <Transferable T>
void bcast(const Comm& comm, std::span<T> values, rank_t root = 0) {
  const detail::CollectiveScope scope(comm, "bcast", root, values.size(),
                                      sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int vr = detail::virtual_rank(comm.rank(), root, n);
  // Classic binomial tree: receive once from the parent at the lowest set
  // bit of the virtual rank, then forward to children at decreasing bits.
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      const int parent = detail::actual_rank(vr - mask, root, n);
      comm.recv_raw(std::as_writable_bytes(values), parent, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = detail::actual_rank(vr + mask, root, n);
      comm.send_raw(std::as_bytes(values), child, tag);
    }
    mask >>= 1;
  }
}

/// Broadcast a single value.
template <Transferable T>
void bcast_value(const Comm& comm, T& value, rank_t root = 0) {
  bcast(comm, std::span<T>(&value, 1), root);
}

/// Broadcast a variable-length byte buffer (size first, then payload).
inline void bcast_bytes(const Comm& comm, std::vector<std::byte>& bytes,
                        rank_t root = 0) {
  std::uint64_t size = bytes.size();
  bcast_value(comm, size, root);
  if (comm.rank() != root) bytes.resize(size);
  if (size > 0) bcast(comm, std::span<std::byte>(bytes), root);
}

/// Broadcast a string (used by MPH to distribute the registration file,
/// paper §6: "read by the root processor and broadcast to all processors").
inline void bcast_string(const Comm& comm, std::string& text, rank_t root = 0) {
  std::uint64_t size = text.size();
  bcast_value(comm, size, root);
  if (comm.rank() != root) text.resize(size);
  if (size > 0) {
    bcast(comm, std::span<char>(text.data(), text.size()), root);
  }
}

/// Elementwise reduction of `values` onto `root` (binomial tree).
/// Every member passes the same element count; `result` is resized on root
/// and left empty elsewhere.
template <Transferable T, class Op>
void reduce(const Comm& comm, std::span<const T> values, std::vector<T>& result,
            Op op, rank_t root = 0) {
  const detail::CollectiveScope scope(comm, "reduce", root, values.size(),
                                      sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int vr = detail::virtual_rank(comm.rank(), root, n);
  std::vector<T> acc(values.begin(), values.end());
  std::vector<T> incoming(values.size());
  // Fold children (mirror of the bcast tree: lowest bits first).
  for (int bit = 1; bit < n; bit <<= 1) {
    if ((vr & bit) != 0) {
      const int parent = detail::actual_rank(vr - bit, root, n);
      comm.send_raw(std::as_bytes(std::span<const T>(acc)), parent, tag);
      break;
    }
    if (vr + bit < n) {
      const int child = detail::actual_rank(vr + bit, root, n);
      comm.recv_raw(std::as_writable_bytes(std::span<T>(incoming)), child, tag);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], incoming[i]);
      }
    }
  }
  if (comm.rank() == root) {
    result = std::move(acc);
  } else {
    result.clear();
  }
}

/// Single-value reduce convenience.
template <Transferable T, class Op>
T reduce_value(const Comm& comm, const T& value, Op op, rank_t root = 0) {
  std::vector<T> result;
  reduce(comm, std::span<const T>(&value, 1), result, op, root);
  return comm.rank() == root ? result[0] : T{};
}

/// Elementwise reduction delivered to every member.
template <Transferable T, class Op>
std::vector<T> allreduce(const Comm& comm, std::span<const T> values, Op op) {
  std::vector<T> result;
  reduce(comm, values, result, op, 0);
  if (comm.rank() != 0) result.resize(values.size());
  bcast(comm, std::span<T>(result), 0);
  return result;
}

/// Single-value allreduce convenience.
template <Transferable T, class Op>
T allreduce_value(const Comm& comm, const T& value, Op op) {
  return allreduce(comm, std::span<const T>(&value, 1), op)[0];
}

/// Gather equal-size contributions onto root (linear).
template <Transferable T>
std::vector<T> gather(const Comm& comm, std::span<const T> values,
                      rank_t root = 0) {
  const detail::CollectiveScope scope(comm, "gather", root, values.size(),
                                      sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  if (comm.rank() != root) {
    comm.send_raw(std::as_bytes(values), root, tag);
    return {};
  }
  std::vector<T> result(values.size() * static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    std::span<T> slot(result.data() + static_cast<std::size_t>(r) * values.size(),
                      values.size());
    if (r == root) {
      std::copy(values.begin(), values.end(), slot.begin());
    } else {
      comm.recv_raw(std::as_writable_bytes(slot), r, tag);
    }
  }
  return result;
}

/// Gather variable-size contributions onto root; `counts[r]` reports each
/// member's element count (root only).
template <Transferable T>
std::vector<T> gatherv(const Comm& comm, std::span<const T> values,
                       std::vector<std::size_t>* counts, rank_t root = 0) {
  const detail::CollectiveScope scope(comm, "gatherv", root,
                                      Checker::kUncheckedCount, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  if (comm.rank() != root) {
    comm.send_raw(std::as_bytes(values), root, tag);
    if (counts != nullptr) counts->clear();
    return {};
  }
  std::vector<T> result;
  if (counts != nullptr) counts->assign(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    if (r == root) {
      result.insert(result.end(), values.begin(), values.end());
      if (counts != nullptr) (*counts)[static_cast<std::size_t>(r)] = values.size();
    } else {
      auto [status, bytes] = comm.recv_take_raw(r, tag);
      (void)status;
      const std::size_t count = bytes.size() / sizeof(T);
      std::vector<T> block(count);
      if (count > 0) std::memcpy(block.data(), bytes.data(), bytes.size());
      if (counts != nullptr) (*counts)[static_cast<std::size_t>(r)] = count;
      result.insert(result.end(), block.begin(), block.end());
    }
  }
  return result;
}

/// Scatter equal-size blocks from root (linear).
template <Transferable T>
std::vector<T> scatter(const Comm& comm, std::span<const T> values,
                       std::size_t block, rank_t root = 0) {
  const detail::CollectiveScope scope(comm, "scatter", root, block, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  std::vector<T> mine(block);
  if (comm.rank() == root) {
    if (values.size() < block * static_cast<std::size_t>(n)) {
      throw Error(Errc::invalid_argument,
                  "scatter: send buffer smaller than block*size");
    }
    for (int r = 0; r < n; ++r) {
      std::span<const T> slot(values.data() + static_cast<std::size_t>(r) * block,
                              block);
      if (r == root) {
        std::copy(slot.begin(), slot.end(), mine.begin());
      } else {
        comm.send_raw(std::as_bytes(slot), r, tag);
      }
    }
  } else {
    comm.recv_raw(std::as_writable_bytes(std::span<T>(mine)), root, tag);
  }
  return mine;
}

/// Allgather equal-size contributions (ring algorithm).
template <Transferable T>
std::vector<T> allgather(const Comm& comm, std::span<const T> values) {
  const detail::CollectiveScope scope(comm, "allgather", -1, values.size(),
                                      sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int r = comm.rank();
  const std::size_t block = values.size();
  std::vector<T> result(block * static_cast<std::size_t>(n));
  std::copy(values.begin(), values.end(),
            result.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(r) * block));
  const rank_t to = (r + 1) % n;
  const rank_t from = (r - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (r - step + n) % n;
    const int recv_block = (r - step - 1 + n) % n;
    std::span<const T> out(
        result.data() + static_cast<std::size_t>(send_block) * block, block);
    std::span<T> in(result.data() + static_cast<std::size_t>(recv_block) * block,
                    block);
    comm.sendrecv_raw(std::as_bytes(out), to, tag, std::as_writable_bytes(in),
                      from, tag);
  }
  return result;
}

/// Allgather a single value per rank.
template <Transferable T>
std::vector<T> allgather_value(const Comm& comm, const T& value) {
  return allgather(comm, std::span<const T>(&value, 1));
}

/// Allgather variable-size contributions: first allgather the counts, then
/// exchange payloads along the ring.  `offsets[r]`/`counts[r]` describe
/// rank r's block in the result.
template <Transferable T>
std::vector<T> allgatherv(const Comm& comm, std::span<const T> values,
                          std::vector<std::size_t>* counts_out = nullptr) {
  const int n = comm.size();
  const std::uint64_t my_count = values.size();
  std::vector<std::uint64_t> counts = allgather_value(comm, my_count);

  const detail::CollectiveScope scope(comm, "allgatherv", -1,
                                      Checker::kUncheckedCount, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int r = comm.rank();
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    offsets[static_cast<std::size_t>(i) + 1] =
        offsets[static_cast<std::size_t>(i)] +
        static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]);
  }
  std::vector<T> result(offsets.back());
  std::copy(values.begin(), values.end(),
            result.begin() +
                static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(r)]));
  const rank_t to = (r + 1) % n;
  const rank_t from = (r - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (r - step + n) % n;
    const int recv_block = (r - step - 1 + n) % n;
    std::span<const T> out(
        result.data() + offsets[static_cast<std::size_t>(send_block)],
        static_cast<std::size_t>(counts[static_cast<std::size_t>(send_block)]));
    std::span<T> in(
        result.data() + offsets[static_cast<std::size_t>(recv_block)],
        static_cast<std::size_t>(counts[static_cast<std::size_t>(recv_block)]));
    comm.sendrecv_raw(std::as_bytes(out), to, tag, std::as_writable_bytes(in),
                      from, tag);
  }
  if (counts_out != nullptr) {
    counts_out->assign(counts.begin(), counts.end());
  }
  return result;
}

/// Allgather one string per rank (length exchange + byte ring).
inline std::vector<std::string> allgather_strings(const Comm& comm,
                                                  const std::string& mine) {
  std::vector<std::size_t> counts;
  std::vector<char> flat = allgatherv(
      comm, std::span<const char>(mine.data(), mine.size()), &counts);
  std::vector<std::string> result;
  result.reserve(counts.size());
  std::size_t offset = 0;
  for (std::size_t c : counts) {
    result.emplace_back(flat.data() + offset, c);
    offset += c;
  }
  return result;
}

/// All-to-all exchange of equal-size blocks (shifted pairwise).
template <Transferable T>
std::vector<T> alltoall(const Comm& comm, std::span<const T> values,
                        std::size_t block) {
  const detail::CollectiveScope scope(comm, "alltoall", -1, block, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int r = comm.rank();
  if (values.size() < block * static_cast<std::size_t>(n)) {
    throw Error(Errc::invalid_argument,
                "alltoall: send buffer smaller than block*size");
  }
  std::vector<T> result(block * static_cast<std::size_t>(n));
  std::copy_n(values.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(r) * block),
              block,
              result.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(r) * block));
  for (int step = 1; step < n; ++step) {
    const rank_t to = (r + step) % n;
    const rank_t from = (r - step + n) % n;
    std::span<const T> out(
        values.data() + static_cast<std::size_t>(to) * block, block);
    std::span<T> in(result.data() + static_cast<std::size_t>(from) * block,
                    block);
    comm.sendrecv_raw(std::as_bytes(out), to, tag, std::as_writable_bytes(in),
                      from, tag);
  }
  return result;
}

/// Exclusive prefix reduction: rank r receives op-fold of ranks 0..r-1;
/// rank 0 receives `identity`.  Linear chain.
template <Transferable T, class Op>
T exscan(const Comm& comm, const T& value, Op op, T identity = T{}) {
  const detail::CollectiveScope scope(comm, "exscan", -1, 1, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int r = comm.rank();
  T below = identity;
  if (r > 0) {
    comm.recv_raw(std::as_writable_bytes(std::span<T>(&below, 1)), r - 1, tag);
  }
  if (r + 1 < n) {
    const T inclusive = r == 0 ? value : op(below, value);
    comm.send_raw(std::as_bytes(std::span<const T>(&inclusive, 1)), r + 1,
                  tag);
  }
  return below;
}

/// Reduce-scatter with equal blocks: elementwise reduction of
/// `values` (block * size elements) followed by scattering block r to rank
/// r.  Implemented as reduce + scatter (the collectives MPH-era MPI
/// libraries composed it from).
template <Transferable T, class Op>
std::vector<T> reduce_scatter_block(const Comm& comm,
                                    std::span<const T> values,
                                    std::size_t block, Op op) {
  const int n = comm.size();
  if (values.size() < block * static_cast<std::size_t>(n)) {
    throw Error(Errc::invalid_argument,
                "reduce_scatter_block: send buffer smaller than block*size");
  }
  std::vector<T> reduced;
  reduce(comm, values, reduced, op, 0);
  if (comm.rank() != 0) {
    reduced.resize(values.size());  // scatter reads root's buffer only
  }
  return scatter(comm, std::span<const T>(reduced), block, 0);
}

/// Inclusive prefix reduction (linear chain).
template <Transferable T, class Op>
T scan(const Comm& comm, const T& value, Op op) {
  const detail::CollectiveScope scope(comm, "scan", -1, 1, sizeof(T));
  const tag_t tag = comm.next_collective_tag();
  const int n = comm.size();
  const int r = comm.rank();
  T acc = value;
  if (r > 0) {
    T partial{};
    comm.recv_raw(std::as_writable_bytes(std::span<T>(&partial, 1)), r - 1,
                  tag);
    acc = op(partial, acc);
  }
  if (r + 1 < n) {
    comm.send_raw(std::as_bytes(std::span<const T>(&acc, 1)), r + 1, tag);
  }
  return acc;
}

}  // namespace minimpi
