// metrics.hpp — mph_mon: always-cheap live runtime telemetry.
//
// mph_trace (trace.hpp) answers "what happened" after the job: full event
// timelines, drained post-mortem.  mph_mon answers "what is happening
// right now": a registry of monotonic counters, gauges, and fixed-bucket
// log2 histograms that a monitor thread snapshots periodically and
// publishes while the job runs — the modern tracing/metrics split, applied
// to the paper's long coupled-component jobs where an operator needs to
// see *live* which component is the bottleneck, whose queues are growing,
// and who is blocked.
//
// Cost discipline (the same null-pointer hook contract as the Checker,
// Scheduler, and Tracer layers):
//
//   * Off path: monitoring is enabled per job (JobOptions::monitor or the
//     MINIMPI_MONITOR environment variable).  When off, Job::metrics() is
//     null and every instrumentation point is one branch on a null
//     pointer — nothing is allocated, counted, or timed.
//   * On path: every hot-path update is a relaxed atomic add/store into a
//     per-rank, cache-line-padded slot block.  No locks, no allocation.
//     Aggregation (summing ranks, filling histograms into a snapshot)
//     happens entirely on the *reader* side, in the monitor thread.
//
// Snapshot consistency: relaxed counters mean a snapshot taken while
// ranks are running is not a consistent cut — `delivered` may momentarily
// exceed `sends`, a histogram's count may trail its buckets by an update.
// Each individual load is still atomic (no torn values, no data races —
// the tsan contention test exercises exactly this), and every counter is
// monotone, so rates computed between two snapshots are exact over the
// interval.  The final snapshot in JobReport::metrics is taken after all
// rank threads joined and is exact.
//
// Histogram contract (checked by mph_racer, DESIGN.md §14): within one
// rank's match-latency histogram, `count` never runs ahead of the data.
// The writer updates sum, then the bucket, then count with release; the
// reader loads count first with acquire, then buckets and sum.  So for any
// live snapshot: buckets_total >= count and sum covers at least the
// counted events — a consumer dividing sum/count or averaging bucket
// midpoints never sees phantom events (count = 1 with empty buckets was
// possible under the original all-relaxed ordering; the racer's
// metrics_histogram litmus finds that in two executions).  Counters
// outside the histogram stay fully relaxed: they are independent monotone
// values with no cross-field invariant.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Per-job monitoring configuration.  Merged with the MINIMPI_MONITOR
/// environment variable at Job construction (the union of both enables).
struct MonitorOptions {
  /// Master switch: allocates the registry and (when interval > 0) starts
  /// the monitor thread.
  bool enabled = false;

  /// Snapshot/publish period of the monitor thread.  Zero keeps the
  /// registry collecting (and JobReport::metrics populated) without any
  /// thread or file output — what most tests want.
  std::chrono::milliseconds interval{100};

  /// Directory the monitor publishes into (created on demand, like the
  /// output redirection layer's default).
  std::string dir = "logs";

  /// Serve the latest snapshot over a local AF_UNIX socket at
  /// socket_path() while the job is alive (POSIX only; bind failures
  /// disable the socket with a diagnostic, never the job).
  bool socket = true;

  /// Published file/socket names under `dir`.
  [[nodiscard]] std::string jsonl_path() const { return dir + "/mph_metrics.jsonl"; }
  [[nodiscard]] std::string exposition_path() const { return dir + "/mph_metrics.prom"; }
  [[nodiscard]] std::string socket_path() const { return dir + "/mph_monitor.sock"; }

  /// Parse a MINIMPI_MONITOR-style value: "1"/"on" enable; a comma/space
  /// list may add "interval=N" (milliseconds), "dir=PATH", and "nosocket".
  /// Unknown tokens are ignored.
  [[nodiscard]] static MonitorOptions parse(std::string_view text);

  /// This set of options unioned with what MINIMPI_MONITOR enables.
  [[nodiscard]] MonitorOptions merged_with_env() const;
};

// ---------------------------------------------------------------------------
// Job-wide communication counters (single source of truth)
// ---------------------------------------------------------------------------

/// Aggregate communication counters of one job (monotone; snapshot with
/// Job::stats()).  This is the one job-wide counter struct: JobReport
/// carries it directly, TraceReport embeds it for the Chrome-JSON rollup,
/// and MetricsSnapshot embeds it so live telemetry and post-mortem traces
/// never disagree about message counts.
struct CommStats {
  std::uint64_t messages = 0;            ///< envelopes delivered
  std::uint64_t payload_bytes = 0;       ///< payload volume delivered
  std::uint64_t contexts_allocated = 0;  ///< communicators created job-wide
  /// Largest unmatched-envelope backlog any single mailbox ever reached —
  /// backpressure visibility for the unbounded queues.
  std::uint64_t queue_high_water = 0;
  /// Messages delivered per communicator context id, ascending by context —
  /// how traffic splits across COMM_WORLD and derived communicators.
  std::vector<std::pair<context_t, std::uint64_t>> messages_by_context;
  /// Wildcard (ANY_SOURCE) receive operations issued: blocking receives,
  /// probes, and posted receives with an unspecified source (nonblocking
  /// probes count on a hit, so spin loops do not inflate the number).
  std::uint64_t wildcard_recvs = 0;
};

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Fixed bucket count of every registry histogram: bucket k holds values
/// whose bit width is k (bucket 0: value 0; bucket k: 2^(k-1) <= v < 2^k),
/// i.e. log2-spaced upper bounds 1, 2, 4, ... — 40 buckets span about 9
/// minutes in nanoseconds, plenty for a match latency.
inline constexpr std::size_t kMetricsHistogramBuckets = 40;

/// Bucket index of `value` (see kMetricsHistogramBuckets).
[[nodiscard]] constexpr std::size_t metrics_histogram_bucket(
    std::uint64_t value) noexcept {
  std::size_t width = 0;
  while (value != 0) {
    value >>= 1U;
    ++width;
  }
  return width < kMetricsHistogramBuckets ? width
                                          : kMetricsHistogramBuckets - 1;
}

/// Inclusive upper bound of histogram bucket `i` (2^i - ... ; bucket 0 is
/// exactly 0, the last bucket is unbounded).
[[nodiscard]] constexpr std::uint64_t metrics_histogram_upper(
    std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 63) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// An aggregated (snapshot-side) histogram.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kMetricsHistogramBuckets> buckets{};
};

// ---------------------------------------------------------------------------
// Snapshot model
// ---------------------------------------------------------------------------

/// One rank's aggregated metrics at snapshot time.
struct RankMetrics {
  rank_t world_rank = -1;
  std::string component;  ///< handshake component name (exec label before)
  bool alive = true;      ///< liveness flag (false once the rank failed)
  std::uint64_t sends = 0;            ///< envelopes this rank handed off
  std::uint64_t send_bytes = 0;
  std::uint64_t delivered = 0;        ///< envelopes delivered *to* this rank
  std::uint64_t delivered_bytes = 0;
  std::uint64_t matches = 0;          ///< receive completions measured
  std::uint64_t collectives = 0;      ///< collective invocations entered
  std::uint64_t faults = 0;           ///< fault-plan rules fired on this rank
  std::uint64_t blocked_ns = 0;       ///< total time blocked in mailbox waits
  std::uint64_t queue_depth = 0;      ///< unmatched backlog right now (gauge)
  std::uint64_t queue_high_water = 0; ///< largest backlog ever (gauge)
  std::uint64_t handshake_ns = 0;     ///< MPH handshake duration (gauge)
  HistogramData match_latency;        ///< blocking-receive wait -> match, ns
  /// Registered probe values (e.g. output_lines(<path>) per OutputChannel).
  std::vector<std::pair<std::string, std::uint64_t>> values;
};

/// Per-component rollup computed from the rank rows.
struct ComponentMetrics {
  std::string component;
  int ranks = 0;
  int alive = 0;
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t blocked_ns = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_high_water = 0;
};

/// One published snapshot: job-wide counters plus every rank's row.
/// Serialized as one JSONL line (kind == "mph_metrics") and as a
/// Prometheus text exposition.
struct MetricsSnapshot {
  /// Top-level "kind" marker of the JSONL line — how tooling tells a
  /// metrics file from a Chrome trace export.
  static constexpr const char* kKind = "mph_metrics";

  std::uint64_t seq = 0;   ///< snapshot sequence number (1-based)
  std::uint64_t t_ns = 0;  ///< nanoseconds since the registry epoch
  /// Wall-clock epoch milliseconds at snapshot time.  Together with `seq`
  /// this makes every JSONL line self-describing: a reader derives rates
  /// from the stamps on the lines, never from its own arrival times, and
  /// detects a re-served line (same seq) instead of computing a zero rate.
  std::uint64_t wall_ms = 0;
  CommStats comm;          ///< job-wide counters (Job::stats())
  std::vector<RankMetrics> ranks;

  /// Rank rows aggregated by component, in first-seen (rank) order.
  [[nodiscard]] std::vector<ComponentMetrics> by_component() const;

  /// One JSON object on a single line (no trailing newline).
  [[nodiscard]] std::string to_jsonl() const;

  /// Prometheus text exposition format (one document).
  [[nodiscard]] std::string to_prometheus() const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The per-job metrics collector: one cache-line-padded block of relaxed
/// atomics per world rank, plus mutex-guarded cold metadata (component
/// names, value probes).  Null when monitoring is off.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int world_size);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  /// Nanoseconds since this registry's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  // --- hot path (relaxed atomics, no locks) --------------------------------

  void on_send(rank_t rank, std::uint64_t bytes) noexcept;
  void on_delivered(rank_t rank, std::uint64_t bytes) noexcept;
  /// A receive completed after waiting `latency_ns` (count + histogram).
  void on_match(rank_t rank, std::uint64_t latency_ns) noexcept;
  void on_collective(rank_t rank) noexcept;
  void on_fault(rank_t rank) noexcept;
  void add_blocked_ns(rank_t rank, std::uint64_t ns) noexcept;
  /// Bracket a blocked mailbox wait.  While a wait is open, read_rank
  /// folds the in-progress time into blocked_ns, so a live snapshot shows
  /// a *stuck* rank's blocking as it accrues — mph_watch's stall rule
  /// depends on this; the flushed counter alone only moves when a wait
  /// completes, which a stalled rank's never does.  Returns the start
  /// stamp to pass to note_block_end.
  [[nodiscard]] std::uint64_t note_block_start(rank_t rank) noexcept;
  void note_block_end(rank_t rank, std::uint64_t start_ns) noexcept;
  /// Current unmatched backlog of the rank's mailbox; also maintains the
  /// high-water gauge.
  void set_queue_depth(rank_t rank, std::uint64_t depth) noexcept;

  // --- cold path (mutex-guarded; handshake / setup only) -------------------

  /// Name a rank's component ("ocean", "Ocean2" — MPH sets this during the
  /// handshake).  Thread safe; last writer wins.
  void set_component(rank_t rank, std::string name);
  [[nodiscard]] std::string component(rank_t rank) const;

  /// MPH handshake duration of this rank (gauge; relaxed store).
  void set_handshake_ns(rank_t rank, std::uint64_t ns) noexcept;

  /// Register a named value probe sampled at every snapshot (e.g. the
  /// line counter of an OutputChannel).  The callable must stay valid for
  /// the job's lifetime — capture shared state by shared_ptr.
  void add_probe(rank_t rank, std::string name,
                 std::function<std::uint64_t()> probe);

  // --- reader side ---------------------------------------------------------

  /// Aggregate one rank's slots (component/alive left at defaults — the
  /// Job fills those from its own liveness state).
  [[nodiscard]] RankMetrics read_rank(rank_t rank) const;

  /// Next snapshot sequence number (monotone, starts at 1).
  [[nodiscard]] std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  /// One rank's hot slots.  Padded to a cache line so two ranks hammering
  /// their own counters never share a line.
  struct alignas(64) RankSlots {
    mph::atomic<std::uint64_t> sends{0};
    mph::atomic<std::uint64_t> send_bytes{0};
    mph::atomic<std::uint64_t> delivered{0};
    mph::atomic<std::uint64_t> delivered_bytes{0};
    mph::atomic<std::uint64_t> collectives{0};
    mph::atomic<std::uint64_t> faults{0};
    mph::atomic<std::uint64_t> blocked_ns{0};
    mph::atomic<std::uint64_t> blocked_since{0};  ///< 0 = no wait open
    mph::atomic<std::uint64_t> queue_depth{0};
    mph::atomic<std::uint64_t> queue_high_water{0};
    mph::atomic<std::uint64_t> handshake_ns{0};
    mph::atomic<std::uint64_t> latency_count{0};
    mph::atomic<std::uint64_t> latency_sum{0};
    std::array<mph::atomic<std::uint64_t>, kMetricsHistogramBuckets>
        latency_buckets{};
  };

  [[nodiscard]] bool valid(rank_t rank) const noexcept {
    return rank >= 0 && rank < world_size_;
  }

  int world_size_;
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<RankSlots[]> slots_;
  mph::atomic<std::uint64_t> seq_{0};

  mutable std::mutex meta_mutex_;
  std::vector<std::string> components_;
  std::vector<std::vector<
      std::pair<std::string, std::function<std::uint64_t()>>>>
      probes_;
};

// ---------------------------------------------------------------------------
// Monitor thread
// ---------------------------------------------------------------------------

/// Periodic snapshot publisher.  Owns a background thread that, every
/// MonitorOptions::interval: builds a snapshot (through the callback the
/// Job provides), appends it to the JSONL file, rewrites the Prometheus
/// exposition file, and answers AF_UNIX connections with the latest
/// JSONL line.  stop() joins the thread and publishes one final snapshot
/// so the files always end on the job's last state.
class Monitor {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;
  /// Optional per-publish observer (mph_watch): sees every snapshot the
  /// thread takes and returns extra Prometheus text (alert gauges)
  /// appended to the exposition file.  Runs on the monitor thread only.
  using ObserveFn = std::function<std::string(const MetricsSnapshot&)>;

  Monitor(MonitorOptions options, SnapshotFn snapshot,
          ObserveFn observe = nullptr);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Join the publisher thread and write the final snapshot.  Idempotent;
  /// called by the Job before its mailboxes are torn down.
  void stop();

  [[nodiscard]] const MonitorOptions& options() const noexcept {
    return options_;
  }

 private:
  void run();
  void publish(const MetricsSnapshot& snap);
  void serve_socket(const std::string& line);

  MonitorOptions options_;
  SnapshotFn snapshot_;
  ObserveFn observe_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace minimpi
