// reduce_ops.hpp — combination operators for reductions and scans.
//
// Mirrors the MPI predefined operator set (SUM, PROD, MIN, MAX, LAND, LOR,
// BAND, BOR, MINLOC, MAXLOC) as plain function objects; any callable with
// signature T(T, T) that is associative works with the collectives.
#pragma once

#include <algorithm>
#include <utility>

namespace minimpi::op {

struct Sum {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

struct Prod {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a * b;
  }
};

struct Min {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

struct Max {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

struct LogicalAnd {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a && b);
  }
};

struct LogicalOr {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a || b);
  }
};

struct BitAnd {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a & b;
  }
};

struct BitOr {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a | b;
  }
};

/// Value+location pair for MinLoc/MaxLoc reductions (mirrors MPI_MINLOC).
template <class T>
struct ValueLoc {
  T value;
  int location;

  friend bool operator==(const ValueLoc&, const ValueLoc&) = default;
};

struct MinLoc {
  template <class T>
  ValueLoc<T> operator()(const ValueLoc<T>& a, const ValueLoc<T>& b) const {
    if (b.value < a.value) return b;
    if (a.value < b.value) return a;
    return a.location <= b.location ? a : b;
  }
};

struct MaxLoc {
  template <class T>
  ValueLoc<T> operator()(const ValueLoc<T>& a, const ValueLoc<T>& b) const {
    if (a.value < b.value) return b;
    if (b.value < a.value) return a;
    return a.location <= b.location ? a : b;
  }
};

}  // namespace minimpi::op
