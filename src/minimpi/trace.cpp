#include "src/minimpi/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace minimpi {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

TraceOptions TraceOptions::parse(std::string_view text) noexcept {
  TraceOptions opts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find_first_of(", ", start);
    const std::string_view token =
        text.substr(start, end == std::string_view::npos ? end : end - start);
    if (token == "1" || token == "on" || token == "all" || token == "true") {
      opts.enabled = true;
    } else if (token.rfind("capacity=", 0) == 0) {
      const std::string value(token.substr(9));
      const long parsed = std::strtol(value.c_str(), nullptr, 10);
      if (parsed > 0) {
        opts.enabled = true;
        opts.ring_capacity = static_cast<std::size_t>(parsed);
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return opts;
}

TraceOptions TraceOptions::merged_with_env() const noexcept {
  TraceOptions merged = *this;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at job construction.
  const char* env = std::getenv("MINIMPI_TRACE");
  if (env == nullptr) return merged;
  const TraceOptions from_env = parse(env);
  merged.enabled = merged.enabled || from_env.enabled;
  merged.ring_capacity = std::max(merged.ring_capacity, from_env.ring_capacity);
  return merged;
}

const char* trace_op_category(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::send:
    case TraceOp::post_recv:
    case TraceOp::recv:
      return "p2p";
    case TraceOp::blocked:
      return "blocked";
    case TraceOp::collective:
      return "collective";
    case TraceOp::comm_create:
      return "comm";
    case TraceOp::fault:
      return "fault";
    case TraceOp::phase:
      return "phase";
  }
  return "event";
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void TraceRing::record(const TraceEvent& event) noexcept {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % capacity_];
  // Invalidate first so a concurrent reader of the *previous* occupant
  // cannot accept a half-overwritten slot; publish with the release store
  // of the new stamp once every field is in place.  The field stores are
  // release (not relaxed): a reader that observes any one of them must
  // also observe the stamp invalidation above, or its re-check could pair
  // our field values with the previous occupant's stamp (mph_racer litmus
  // trace_ring_lap; free on x86).
  slot.stamp.store(0, std::memory_order_release);
  slot.t_start.store(event.t_start_ns, std::memory_order_release);
  slot.t_end.store(event.t_end_ns, std::memory_order_release);
  slot.bytes.store(event.bytes, std::memory_order_release);
  slot.flow.store(event.flow, std::memory_order_release);
  slot.name.store(event.name != nullptr ? event.name : "",
                  std::memory_order_release);
  slot.op_and_kind.store(static_cast<std::int32_t>(event.op) |
                             (event.span ? 0x100 : 0),
                         std::memory_order_release);
  slot.peer.store(event.peer, std::memory_order_release);
  slot.tag.store(event.tag, std::memory_order_release);
  slot.context.store(event.context, std::memory_order_release);
  slot.stamp.store(idx + 1, std::memory_order_release);
}

TraceRing::Snapshot TraceRing::snapshot() const {
  Snapshot out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  out.dropped = begin;
  out.events.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t idx = begin; idx < head; ++idx) {
    const Slot& slot = slots_[idx % capacity_];
    if (slot.stamp.load(std::memory_order_acquire) != idx + 1) {
      ++out.dropped;  // claimed but not yet published, or already recycled
      continue;
    }
    // Field loads are acquire to pair with the writer's release field
    // stores: seeing a lapping writer's value forces its earlier stamp
    // invalidation into view, so the re-check below cannot accept a slot
    // whose fields mix two writers (mph_racer litmus trace_ring_lap).
    TraceEvent event;
    event.t_start_ns = slot.t_start.load(std::memory_order_acquire);
    event.t_end_ns = slot.t_end.load(std::memory_order_acquire);
    event.bytes = slot.bytes.load(std::memory_order_acquire);
    event.flow = slot.flow.load(std::memory_order_acquire);
    event.name = slot.name.load(std::memory_order_acquire);
    const std::int32_t packed =
        slot.op_and_kind.load(std::memory_order_acquire);
    event.op = static_cast<TraceOp>(packed & 0xFF);
    event.span = (packed & 0x100) != 0;
    event.peer = slot.peer.load(std::memory_order_acquire);
    event.tag = slot.tag.load(std::memory_order_acquire);
    event.context = slot.context.load(std::memory_order_acquire);
    // Re-check: a writer that lapped us mid-read left a different stamp.
    if (slot.stamp.load(std::memory_order_acquire) != idx + 1) {
      ++out.dropped;
      continue;
    }
    out.events.push_back(event);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(int world_size, TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  const auto n = static_cast<std::size_t>(world_size > 0 ? world_size : 0);
  rings_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(options_.ring_capacity));
  }
  flow_seq_ = std::make_unique<mph::atomic<std::uint64_t>[]>(n);
  track_names_.assign(n, std::string{});
  counters_.assign(n, {});
}

std::uint64_t Tracer::next_flow(rank_t src) noexcept {
  if (src < 0 || static_cast<std::size_t>(src) >= rings_.size()) return 0;
  const std::uint64_t seq =
      flow_seq_[static_cast<std::size_t>(src)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  return (static_cast<std::uint64_t>(src) + 1) << 40 | seq;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::instant(rank_t ring, TraceOp op, const char* name, rank_t peer,
                     context_t context, tag_t tag, std::uint64_t bytes,
                     std::uint64_t flow) noexcept {
  if (ring < 0 || static_cast<std::size_t>(ring) >= rings_.size()) return;
  TraceEvent event;
  event.t_start_ns = now_ns();
  event.t_end_ns = event.t_start_ns;
  event.op = op;
  event.span = false;
  event.name = name;
  event.peer = peer;
  event.context = context;
  event.tag = tag;
  event.bytes = bytes;
  event.flow = flow;
  rings_[static_cast<std::size_t>(ring)]->record(event);
}

void Tracer::span_end(rank_t ring, TraceOp op, const char* name,
                      std::uint64_t t_start_ns, rank_t peer, context_t context,
                      tag_t tag, std::uint64_t bytes,
                      std::uint64_t flow) noexcept {
  if (ring < 0 || static_cast<std::size_t>(ring) >= rings_.size()) return;
  TraceEvent event;
  event.t_start_ns = t_start_ns;
  event.t_end_ns = std::max(now_ns(), t_start_ns);
  event.op = op;
  event.span = true;
  event.name = name;
  event.peer = peer;
  event.context = context;
  event.tag = tag;
  event.bytes = bytes;
  event.flow = flow;
  rings_[static_cast<std::size_t>(ring)]->record(event);
}

void Tracer::set_track_name(rank_t world_rank, std::string name) {
  if (world_rank < 0 ||
      static_cast<std::size_t>(world_rank) >= track_names_.size()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(meta_mutex_);
  track_names_[static_cast<std::size_t>(world_rank)] = std::move(name);
}

void Tracer::add_counter(rank_t world_rank, std::string name,
                         std::uint64_t value) {
  if (world_rank < 0 ||
      static_cast<std::size_t>(world_rank) >= counters_.size()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(meta_mutex_);
  counters_[static_cast<std::size_t>(world_rank)].emplace_back(std::move(name),
                                                               value);
}

// ---------------------------------------------------------------------------
// TraceReport analyses
// ---------------------------------------------------------------------------

std::string TraceReport::component_of(std::string_view track) {
  const std::size_t colon = track.rfind(':');
  if (colon == std::string_view::npos) return std::string(track);
  return std::string(track.substr(0, colon));
}

std::vector<TraceReport::Traffic> TraceReport::component_traffic() const {
  // Component of each world rank, for resolving a send's destination.
  rank_t max_rank = -1;
  for (const RankTrace& r : ranks) max_rank = std::max(max_rank, r.world_rank);
  std::vector<std::string> component(
      static_cast<std::size_t>(max_rank + 1));
  for (const RankTrace& r : ranks) {
    if (r.world_rank >= 0) {
      component[static_cast<std::size_t>(r.world_rank)] =
          component_of(r.track);
    }
  }
  std::map<std::pair<std::string, std::string>, Traffic> cells;
  for (const RankTrace& r : ranks) {
    const std::string src = component_of(r.track);
    for (const TraceEvent& e : r.events) {
      if (e.op != TraceOp::send) continue;
      std::string dest = "?";
      if (e.peer >= 0 &&
          static_cast<std::size_t>(e.peer) < component.size()) {
        dest = component[static_cast<std::size_t>(e.peer)];
      }
      Traffic& cell = cells[{src, dest}];
      cell.src = src;
      cell.dest = dest;
      cell.messages += 1;
      cell.bytes += e.bytes;
    }
  }
  std::vector<Traffic> out;
  out.reserve(cells.size());
  for (auto& [key, cell] : cells) out.push_back(std::move(cell));
  return out;
}

std::vector<TraceReport::RankBlocked> TraceReport::blocked_breakdown() const {
  std::vector<RankBlocked> out;
  out.reserve(ranks.size());
  for (const RankTrace& r : ranks) {
    RankBlocked row;
    row.world_rank = r.world_rank;
    row.track = r.track;
    // Handshake intervals on this rank's own timeline; blocked time inside
    // them is attributed to the handshake, not to p2p/collective waits.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> handshake;
    for (const TraceEvent& e : r.events) {
      if (e.op == TraceOp::phase && e.span &&
          std::string_view(e.name) == "handshake") {
        handshake.emplace_back(e.t_start_ns, e.t_end_ns);
        row.handshake_ns += e.t_end_ns - e.t_start_ns;
      }
    }
    const auto in_handshake = [&](std::uint64_t t) {
      return std::any_of(handshake.begin(), handshake.end(),
                         [&](const auto& iv) {
                           return t >= iv.first && t < iv.second;
                         });
    };
    for (const TraceEvent& e : r.events) {
      if (e.op != TraceOp::blocked || !e.span) continue;
      const std::uint64_t dur = e.t_end_ns - e.t_start_ns;
      if (in_handshake(e.t_start_ns)) continue;  // counted as handshake
      const std::string_view label(e.name);
      if (label == "recv" || label == "wait" || label == "probe" ||
          label == "test" || label == "iprobe") {
        row.recv_wait_ns += dur;
      } else {
        row.collective_wait_ns += dur;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON export
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Nanoseconds as a microsecond decimal ("1234.567") — the trace-event
/// `ts`/`dur` unit — without any floating-point rounding.
std::string us_string(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

}  // namespace

std::string TraceReport::to_chrome_json() const {
  std::string out;
  out.reserve(4096 + ranks.size() * 1024);
  out += "{\n\"traceEvents\": [\n";
  out += R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
         R"("args":{"name":"minimpi job"}})";
  for (const RankTrace& r : ranks) {
    const std::string tid = std::to_string(r.world_rank);
    out += ",\n";
    out += R"({"name":"thread_name","ph":"M","pid":0,"tid":)" + tid +
           R"(,"args":{"name":")";
    append_escaped(out, r.track);
    out += "\"}}";
    out += ",\n";
    out += R"({"name":"thread_sort_index","ph":"M","pid":0,"tid":)" + tid +
           R"(,"args":{"sort_index":)" + tid + "}}";
    for (const TraceEvent& e : r.events) {
      out += ",\n{\"name\":\"";
      append_escaped(out, e.name);
      out += "\",\"cat\":\"";
      out += trace_op_category(e.op);
      out += "\",\"pid\":0,\"tid\":" + tid;
      out += ",\"ts\":" + us_string(e.t_start_ns);
      if (e.span) {
        out += ",\"ph\":\"X\",\"dur\":" + us_string(e.t_end_ns - e.t_start_ns);
      } else {
        out += R"(,"ph":"i","s":"t")";
      }
      out += ",\"args\":{";
      bool first = true;
      const auto arg = [&](const char* key, std::uint64_t value) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += key;
        out += "\":" + std::to_string(value);
      };
      if (e.peer >= 0) arg("peer", static_cast<std::uint64_t>(e.peer));
      arg("context", e.context);
      if (e.tag >= 0) arg("tag", static_cast<std::uint64_t>(e.tag));
      if (e.bytes > 0) arg("bytes", e.bytes);
      if (e.flow > 0) arg("flow", e.flow);
      out += "}}";
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n";

  // Metrics rollup: ignored by trace viewers, read by `mph_inspect trace`.
  out += "\"mph\": {\n";
  out += "\"wildcardRecvs\": " + std::to_string(comm.wildcard_recvs) + ",\n";
  out += "\"contexts\": [";
  for (std::size_t i = 0; i < comm.messages_by_context.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"context\": " +
           std::to_string(comm.messages_by_context[i].first) +
           ", \"messages\": " +
           std::to_string(comm.messages_by_context[i].second) + "}";
  }
  out += "],\n\"componentTraffic\": [";
  const std::vector<Traffic> traffic = component_traffic();
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"src\": \"";
    append_escaped(out, traffic[i].src);
    out += "\", \"dest\": \"";
    append_escaped(out, traffic[i].dest);
    out += "\", \"messages\": " + std::to_string(traffic[i].messages) +
           ", \"bytes\": " + std::to_string(traffic[i].bytes) + "}";
  }
  out += "],\n\"ranks\": [";
  const std::vector<RankBlocked> blocked = blocked_breakdown();
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankTrace& r = ranks[i];
    if (i > 0) out += ", ";
    out += "\n{\"rank\": " + std::to_string(r.world_rank) + ", \"track\": \"";
    append_escaped(out, r.track);
    out += "\", \"events\": " + std::to_string(r.events.size()) +
           ", \"dropped\": " + std::to_string(r.dropped) +
           ", \"queueHighWater\": " + std::to_string(r.queue_high_water);
    const RankBlocked& b = blocked[i];
    out += ", \"blocked\": {\"recvWaitNs\": " +
           std::to_string(b.recv_wait_ns) +
           ", \"collectiveWaitNs\": " + std::to_string(b.collective_wait_ns) +
           ", \"handshakeNs\": " + std::to_string(b.handshake_ns) + "}";
    out += ", \"counters\": [";
    for (std::size_t c = 0; c < r.counters.size(); ++c) {
      if (c > 0) out += ", ";
      out += "{\"name\": \"";
      append_escaped(out, r.counters[c].first);
      out += "\", \"value\": " + std::to_string(r.counters[c].second) + "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n}\n";
  return out;
}

}  // namespace minimpi
