// types.hpp — fundamental identifiers and constants of the minimpi
// message-passing substrate.
//
// minimpi reproduces the MPI execution environment MPH relies on (one
// COMM_WORLD shared by several executables, communicator split, typed
// point-to-point with tag/source matching, collectives) with each MPI
// process realised as one thread of a single OS process.  Identifiers
// follow MPI conventions: ranks are dense 0..size-1 integers, tags are
// non-negative ints, and a *context id* isolates communicators from one
// another exactly like MPI contexts do.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace minimpi {

/// Rank within a communicator (dense, 0-based).
using rank_t = int;

/// Message tag.  User tags must lie in [0, kMaxUserTag]; the range above is
/// reserved for collective algorithms and internal protocols.
using tag_t = int;

/// Communicator context id.  Context 0 is COMM_WORLD of a job; every
/// split/dup/create allocates a fresh context so that traffic on different
/// communicators can never match.
using context_t = std::uint32_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr rank_t any_source = -1;
inline constexpr tag_t any_tag = -1;

/// Color value excluding a rank from a split, mirroring MPI_UNDEFINED.
inline constexpr int undefined = -32766;

/// Largest tag a user may pass; everything above is reserved.
inline constexpr tag_t kMaxUserTag = (1 << 28) - 1;

/// Base of the tag range used by collective algorithms.
inline constexpr tag_t kCollectiveTagBase = 1 << 28;

/// Base of the tag range used by internal control protocols (communicator
/// creation outside a parent collective, e.g. MPH_comm_join).
inline constexpr tag_t kControlTagBase = 1 << 29;

/// Context of COMM_WORLD.
inline constexpr context_t kWorldContext = 0;

/// Types eligible for typed send/recv/collectives: trivially copyable and
/// with unique object representations is the safe, explicit subset.
template <class T>
concept Transferable = std::is_trivially_copyable_v<T>;

/// Outcome of a completed receive, mirroring MPI_Status.
struct Status {
  rank_t source = any_source;  ///< source rank *in the receiving communicator*
  tag_t tag = any_tag;         ///< matched tag
  std::size_t bytes = 0;       ///< payload size in bytes

  /// Element count for a given type, mirroring MPI_Get_count.
  template <Transferable T>
  [[nodiscard]] std::size_t count() const noexcept {
    return bytes / sizeof(T);
  }
};

}  // namespace minimpi
