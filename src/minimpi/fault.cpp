#include "src/minimpi/fault.hpp"

#include <iterator>
#include <thread>

#include "src/util/rng.hpp"

namespace minimpi {

FaultPlan& FaultPlan::kill_at(KillPoint point, rank_t victim,
                              std::uint64_t hit) {
  FaultRule rule;
  rule.action = FaultRule::Action::kill;
  rule.point = point;
  rule.victim = victim;
  rule.hit = hit;
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::kill_at_step(rank_t victim, std::uint64_t step) {
  FaultRule rule;
  rule.action = FaultRule::Action::kill;
  rule.point = KillPoint::step;
  rule.victim = victim;
  rule.step = step;
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::drop(EnvelopeMatch match, std::uint64_t hit) {
  FaultRule rule;
  rule.action = FaultRule::Action::drop;
  rule.match = match;
  rule.hit = hit;
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::delay(EnvelopeMatch match, std::chrono::milliseconds by,
                            std::uint64_t hit,
                            std::chrono::milliseconds jitter) {
  FaultRule rule;
  rule.action = FaultRule::Action::delay;
  rule.match = match;
  rule.delay = by;
  rule.delay_jitter = jitter;
  rule.hit = hit;
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::truncate(EnvelopeMatch match, std::size_t bytes,
                               std::uint64_t hit) {
  FaultRule rule;
  rule.action = FaultRule::Action::truncate;
  rule.match = match;
  rule.truncate_to = bytes;
  rule.hit = hit;
  rules_.push_back(rule);
  return *this;
}

FaultPlan FaultPlan::chaos_kill(std::uint64_t seed, int world_size) {
  if (world_size <= 0) {
    throw Error(Errc::invalid_argument,
                "chaos_kill requires a positive world size");
  }
  // Only communication kill-points: every rank reaches them in any job that
  // communicates at all, so the plan is live regardless of the workload.
  static constexpr KillPoint kCandidates[] = {
      KillPoint::before_send,    KillPoint::after_send,
      KillPoint::before_recv,    KillPoint::after_recv,
      KillPoint::before_barrier, KillPoint::after_barrier,
  };
  mph::util::Rng rng(seed);
  const rank_t victim =
      static_cast<rank_t>(rng.below(static_cast<std::uint64_t>(world_size)));
  const KillPoint point = kCandidates[rng.below(std::size(kCandidates))];
  const std::uint64_t hit = rng.range(1, 4);
  FaultPlan plan;
  plan.kill_at(point, victim, hit);
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      rng_(seed),
      visits_(plan_.rules().size(), 0),
      fired_(plan_.rules().size(), false) {}

void FaultInjector::on_point(KillPoint point, rank_t world_rank,
                             std::uint64_t step) {
  const std::vector<FaultRule>& rules = plan_.rules();
  std::size_t fire_index = rules.size();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const FaultRule& rule = rules[i];
      if (rule.action != FaultRule::Action::kill) continue;
      if (rule.point != point) continue;
      if (rule.victim != any_source && rule.victim != world_rank) continue;
      if (point == KillPoint::step && rule.step != step) continue;
      if (fired_[i]) continue;
      if (++visits_[i] < rule.hit) continue;
      fired_[i] = true;
      fire_index = i;
      events_.push_back(FaultEvent{
          i, world_rank,
          std::string("kill at ") + kill_point_name(point) + " (rank " +
              std::to_string(world_rank) + ")"});
      break;
    }
  }
  if (fire_index < rules.size()) {
    if (tracer_ != nullptr) {
      tracer_->instant(world_rank, TraceOp::fault, kill_point_name(point));
    }
    if (metrics_ != nullptr) metrics_->on_fault(world_rank);
    throw FaultInjectedError(point, world_rank);
  }
}

FaultInjector::Filter FaultInjector::filter(Envelope& env, rank_t dest_world) {
  const std::vector<FaultRule>& rules = plan_.rules();
  std::chrono::milliseconds sleep_for{0};
  Filter verdict = Filter::deliver;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const FaultRule& rule = rules[i];
      if (rule.action == FaultRule::Action::kill) continue;
      if (fired_[i]) continue;
      if (!rule.match.matches(env, dest_world)) continue;
      if (++visits_[i] < rule.hit) continue;
      fired_[i] = true;
      switch (rule.action) {
        case FaultRule::Action::drop:
          verdict = Filter::drop;
          events_.push_back(FaultEvent{
              i, dest_world,
              "drop envelope src=" + std::to_string(env.src) +
                  " tag=" + std::to_string(env.tag)});
          if (tracer_ != nullptr) {
            tracer_->instant(env.src, TraceOp::fault, "drop", dest_world,
                             env.context, env.tag, env.payload.size());
          }
          if (metrics_ != nullptr) metrics_->on_fault(env.src);
          break;
        case FaultRule::Action::delay: {
          std::chrono::milliseconds total = rule.delay;
          if (rule.delay_jitter.count() > 0) {
            total += std::chrono::milliseconds(rng_.range(
                0, static_cast<std::int64_t>(rule.delay_jitter.count())));
          }
          sleep_for += total;
          events_.push_back(FaultEvent{
              i, dest_world,
              "delay envelope src=" + std::to_string(env.src) + " by " +
                  std::to_string(total.count()) + "ms"});
          if (tracer_ != nullptr) {
            tracer_->instant(env.src, TraceOp::fault, "delay", dest_world,
                             env.context, env.tag,
                             static_cast<std::uint64_t>(total.count()));
          }
          if (metrics_ != nullptr) metrics_->on_fault(env.src);
          break;
        }
        case FaultRule::Action::truncate:
          if (env.payload.size() > rule.truncate_to) {
            env.payload.resize(rule.truncate_to);
          }
          events_.push_back(FaultEvent{
              i, dest_world,
              "truncate envelope src=" + std::to_string(env.src) + " to " +
                  std::to_string(rule.truncate_to) + " bytes"});
          if (tracer_ != nullptr) {
            tracer_->instant(env.src, TraceOp::fault, "truncate", dest_world,
                             env.context, env.tag, rule.truncate_to);
          }
          if (metrics_ != nullptr) metrics_->on_fault(env.src);
          break;
        case FaultRule::Action::kill:
          break;
      }
      if (verdict == Filter::drop) break;  // dropped: later rules moot
    }
  }
  // Sleep outside the lock so a delay rule never stalls other injections.
  // Under virtual time (schedule verification) the delay is recorded but
  // not slept: message ordering is the explorer's job, not the clock's.
  if (sleep_for.count() > 0 &&
      !virtual_time_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(sleep_for);
  }
  return verdict;
}

std::vector<FaultEvent> FaultInjector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace minimpi
