// trace.hpp — mph_trace: always-available, low-overhead event tracing.
//
// Every rank of a traced job owns one fixed-capacity lock-free ring buffer
// of timestamped events (spans and instants): send/recv post+match,
// blocked-wait intervals, collectives, communicator creation, fault-plan
// firings, and MPH phase spans (handshake stages, registry broadcast,
// joint-communicator setup).  The thread-per-rank design makes this cheap —
// there is no cross-process merge step; JobReport::trace drains the rings
// into one Chrome trace-event JSON document that Perfetto and
// chrome://tracing load directly, one track per component rank.
//
// Off-path cost: tracing is enabled per job (JobOptions::trace or the
// MINIMPI_TRACE environment variable).  When off, Job::tracer() is null and
// every instrumentation point is a branch on a null pointer — the same
// pass-through discipline as the Checker and Scheduler hook layers.
//
// Ring discipline: multi-producer (deliver-side events land on the
// *receiver's* ring from the sender's thread), drop-oldest.  A writer
// claims a slot with one relaxed fetch_add on the ring head and publishes
// the slot with a release store of its stamp; a reader accepts a slot only
// when the stamp matches the claimed index before AND after reading the
// fields, so a concurrent overwrite is detected and counted as dropped
// rather than surfacing a torn event.  Drains normally run after every
// rank thread joined, where the rings are quiescent and reads are exact.
//
// Memory-model contract (checked by mph_racer, DESIGN.md §14): the field
// stores are release and the field loads acquire.  The double stamp check
// alone is NOT enough under the C++11 model — with relaxed fields, a reader
// that observes a lapping writer's new field value is not obliged to see
// that writer's earlier stamp invalidation, so both stamp checks can still
// return the previous occupant's stamp and a mixed event would be accepted.
// The acquire field load synchronizes with the lapping writer's release
// field store, which makes its stamp=0 visible to the re-check.  On x86
// both orderings compile to plain loads/stores, so this costs nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/minimpi/metrics.hpp"
#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Per-job tracing configuration.  Merged with the MINIMPI_TRACE
/// environment variable at Job construction (the union of both enables;
/// the environment may also raise the ring capacity).
struct TraceOptions {
  bool enabled = false;

  /// Events retained per rank.  When a rank records more, the oldest are
  /// dropped and the drop is counted (RankTrace::dropped) — tracing never
  /// blocks or allocates on the hot path.
  std::size_t ring_capacity = 8192;

  /// Parse a MINIMPI_TRACE-style value: "1"/"on"/"all" enable; a
  /// comma/space list may add "capacity=N" to size the rings.  Unknown
  /// tokens are ignored.
  [[nodiscard]] static TraceOptions parse(std::string_view text) noexcept;

  /// This set of options unioned with what MINIMPI_TRACE enables.
  [[nodiscard]] TraceOptions merged_with_env() const noexcept;
};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What an event records.  The category groups events in viewers; `name`
/// carries the specific label ("recv", "barrier", "handshake", ...).
enum class TraceOp : std::uint8_t {
  send,         ///< instant: envelope handed to the destination mailbox
  post_recv,    ///< instant: nonblocking receive posted
  recv,         ///< span: blocking receive/wait from call to match
  blocked,      ///< span: interval a rank spent blocked in a mailbox wait
  collective,   ///< span: one collective invocation
  comm_create,  ///< instant: communicator construction (fresh context)
  fault,        ///< instant: a fault-plan rule fired
  phase,        ///< span: an MPH phase (handshake stage, registry bcast, ...)
};

/// Viewer category string of an op ("p2p", "collective", ...).
[[nodiscard]] const char* trace_op_category(TraceOp op) noexcept;

/// Stable ids stamped into the `tag` field of MPH phase spans so trace
/// consumers (mph_prof, mph_proto) can classify phases without string
/// matching.  The launcher stamps rank_main; the MPH layer stamps the
/// rest.  Additive-only: consumers must ignore ids they do not know.
enum PhaseId : tag_t {
  kPhaseRankMain = 1,       ///< one per rank: entry-point start → exit
  kPhaseHandshake = 2,      ///< the whole MPH handshake
  kPhaseSignatures = 3,     ///< signature_allgather stage
  kPhaseLayout = 4,         ///< layout_resolve stage
  kPhaseCommSetup = 5,      ///< comm_setup stage
  kPhaseRegistry = 6,       ///< registry_resolve broadcast
  kPhaseCommJoin = 7,       ///< MPH_comm_join
};

/// One drained event.  `name` points to static storage (string literals at
/// the record sites) — events never own memory.
struct TraceEvent {
  std::uint64_t t_start_ns = 0;  ///< nanoseconds since the tracer epoch
  std::uint64_t t_end_ns = 0;    ///< == t_start_ns for instants
  TraceOp op = TraceOp::send;
  bool span = false;         ///< span (interval) vs instant
  const char* name = "";     ///< static-storage label
  rank_t peer = any_source;  ///< world rank of the other side (-1: none)
  context_t context = kWorldContext;
  tag_t tag = any_tag;
  std::uint64_t bytes = 0;  ///< payload volume, when meaningful
  /// Per-message flow id: a send instant and the receive event that
  /// matched that exact envelope carry the same nonzero id (stamped by
  /// Tracer::next_flow at the send site, carried by the Envelope).  0 for
  /// events with no message identity.  This is what lets mph_prof stitch
  /// cross-rank happens-before edges out of two per-rank timelines.
  std::uint64_t flow = 0;
};

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// Fixed-capacity, multi-producer, drop-oldest event ring.  See the file
/// comment for the claim/stamp protocol.  Readers may snapshot while
/// writers are active (the tsan contention test does); torn slots are
/// counted as dropped, never returned.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Record one event: wait-free (one fetch_add plus release field stores).
  void record(const TraceEvent& event) noexcept;

  struct Snapshot {
    std::vector<TraceEvent> events;  ///< oldest first, in claim order
    std::uint64_t dropped = 0;       ///< overwritten + torn slots
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Events ever recorded (monotone; may exceed capacity).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

 private:
  /// All fields atomic so concurrent overwrite during a live snapshot is a
  /// detected data race by construction, not an undefined one.  The stamp
  /// holds claim-index + 1 and is written last (release) / checked twice;
  /// fields are stored release and loaded acquire so observing a lapping
  /// writer's field forces its stamp invalidation into view (see the file
  /// comment).
  struct Slot {
    mph::atomic<std::uint64_t> stamp{0};
    mph::atomic<std::uint64_t> t_start{0};
    mph::atomic<std::uint64_t> t_end{0};
    mph::atomic<std::uint64_t> bytes{0};
    mph::atomic<std::uint64_t> flow{0};
    mph::atomic<const char*> name{""};
    mph::atomic<std::int32_t> op_and_kind{0};  ///< op | (span ? 0x100 : 0)
    mph::atomic<std::int32_t> peer{any_source};
    mph::atomic<std::int32_t> tag{any_tag};
    mph::atomic<std::uint32_t> context{kWorldContext};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  mph::atomic<std::uint64_t> head_{0};
};

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// The per-job trace collector: one ring per world rank plus mutex-guarded
/// cold metadata (track names, named counters).  Null when tracing is off.
class Tracer {
 public:
  Tracer(int world_size, TraceOptions options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] const TraceOptions& options() const noexcept {
    return options_;
  }

  /// Nanoseconds since this tracer's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Record an instant on `ring`'s timeline (out-of-range rings are
  /// ignored).  `name` must point to static storage.
  void instant(rank_t ring, TraceOp op, const char* name,
               rank_t peer = any_source, context_t context = kWorldContext,
               tag_t tag = any_tag, std::uint64_t bytes = 0,
               std::uint64_t flow = 0) noexcept;

  /// Record a span that started at `t_start_ns` (from now_ns()) and ends
  /// now.  Spans are recorded whole at their end, so no begin/end pairing
  /// is ever needed downstream.
  void span_end(rank_t ring, TraceOp op, const char* name,
                std::uint64_t t_start_ns, rank_t peer = any_source,
                context_t context = kWorldContext, tag_t tag = any_tag,
                std::uint64_t bytes = 0, std::uint64_t flow = 0) noexcept;

  /// Next flow id for a message sent by world rank `src`: a nonzero id
  /// unique within the job ((src + 1) << 40 | per-rank sequence), stamped
  /// into the send event and carried by the envelope so the matching recv
  /// records the same id.  Wait-free: one relaxed fetch_add.
  [[nodiscard]] std::uint64_t next_flow(rank_t src) noexcept;

  /// Name a rank's timeline track ("component[instance]:local_rank" — MPH
  /// sets this during the handshake).  Thread safe; last writer wins.
  void set_track_name(rank_t world_rank, std::string name);

  /// Attach a named per-rank counter to the drained report (e.g. output
  /// lines per OutputChannel).  Cold path only.
  void add_counter(rank_t world_rank, std::string name, std::uint64_t value);

  [[nodiscard]] std::size_t ring_count() const noexcept {
    return rings_.size();
  }
  [[nodiscard]] const TraceRing& ring(std::size_t i) const {
    return *rings_[i];
  }

 private:
  friend class Job;  // drains rings + metadata into a TraceReport

  TraceOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  /// Per-rank flow-id sequences (relaxed — ordering comes from the events).
  std::unique_ptr<mph::atomic<std::uint64_t>[]> flow_seq_;

  mutable std::mutex meta_mutex_;
  std::vector<std::string> track_names_;
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> counters_;
};

/// RAII span helper: records a span on destruction when the tracer is
/// non-null, nothing otherwise.  Safe to construct with tracer == nullptr.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, rank_t ring, TraceOp op, const char* name,
            tag_t tag = any_tag) noexcept
      : tracer_(tracer),
        ring_(ring),
        op_(op),
        tag_(tag),
        name_(name),
        t0_(tracer != nullptr ? tracer->now_ns() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->span_end(ring_, op_, name_, t0_, any_source, kWorldContext,
                        tag_);
    }
  }

 private:
  Tracer* tracer_;
  rank_t ring_;
  TraceOp op_;
  tag_t tag_;
  const char* name_;
  std::uint64_t t0_;
};

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One rank's drained timeline.
struct RankTrace {
  rank_t world_rank = -1;
  std::string track;               ///< timeline name (component:local_rank)
  std::vector<TraceEvent> events;  ///< oldest first
  std::uint64_t dropped = 0;       ///< events lost to ring overflow
  std::uint64_t queue_high_water = 0;  ///< this mailbox's backlog peak
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Everything JobReport::trace carries: per-rank timelines plus the job
/// counters the rollup needs, with the analyses computed on demand.
struct TraceReport {
  std::vector<RankTrace> ranks;

  /// Job-wide communication counters — the same CommStats Job::stats()
  /// returns (and JobReport/MetricsSnapshot carry), embedded rather than
  /// duplicated so trace rollups and live metrics share one source of
  /// truth for message/context/wildcard counts.
  CommStats comm;

  /// Messages/bytes exchanged between component pairs (tracks stripped of
  /// their ":local_rank" suffix), aggregated from send instants.
  struct Traffic {
    std::string src;
    std::string dest;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] std::vector<Traffic> component_traffic() const;

  /// Blocked-time breakdown of one rank: time blocked in point-to-point
  /// waits, time blocked inside collectives, and time inside the MPH
  /// handshake phase (blocked spans within the handshake interval count as
  /// handshake, not as the other two).
  struct RankBlocked {
    rank_t world_rank = -1;
    std::string track;
    std::uint64_t recv_wait_ns = 0;
    std::uint64_t collective_wait_ns = 0;
    std::uint64_t handshake_ns = 0;
    [[nodiscard]] std::uint64_t total_ns() const noexcept {
      return recv_wait_ns + collective_wait_ns + handshake_ns;
    }
  };
  [[nodiscard]] std::vector<RankBlocked> blocked_breakdown() const;

  /// The component of a track name ("ocean[2]:1" -> "ocean[2]").
  [[nodiscard]] static std::string component_of(std::string_view track);

  /// Chrome trace-event JSON: loads in Perfetto / chrome://tracing (one
  /// named track per rank); the metrics rollup is embedded under the
  /// top-level "mph" key, which trace viewers ignore and
  /// `mph_inspect trace` reads back.
  [[nodiscard]] std::string to_chrome_json() const;
};

}  // namespace minimpi
