#include "src/mph/layout.hpp"

#include <algorithm>

#include "src/mph/errors.hpp"
#include "src/mph/handshake.hpp"
#include "src/util/strings.hpp"

namespace mph {

namespace u = util;

std::string declaration_signature(const LocalDeclaration& decl) {
  std::string sig = decl.is_instance ? "I:" : "C:";
  sig += u::join(decl.names, ",");
  return sig;
}

std::string pinned_signature(const LocalDeclaration& decl,
                             const HandshakeOptions& options) {
  std::string sig = declaration_signature(decl);
  if (!options.contract.empty()) sig += "|contract=" + options.contract;
  return sig;
}

std::string signature_contract_pin(const std::string& sig) {
  const std::size_t bar = sig.find('|');
  if (bar == std::string::npos) return {};
  const std::string_view suffix = std::string_view(sig).substr(bar + 1);
  if (!u::starts_with(suffix, "contract=")) return {};
  return std::string(suffix.substr(9));
}

std::vector<ExecutableRun> find_runs(
    const std::vector<std::string>& signatures) {
  std::vector<ExecutableRun> runs;
  for (minimpi::rank_t r = 0;
       r < static_cast<minimpi::rank_t>(signatures.size()); ++r) {
    const std::string& sig = signatures[static_cast<std::size_t>(r)];
    if (runs.empty() || runs.back().signature != sig) {
      runs.push_back(ExecutableRun{sig, r, 1});
    } else {
      ++runs.back().size;
    }
  }
  return runs;
}

LocalDeclaration parse_signature(const std::string& sig) {
  LocalDeclaration decl;
  decl.is_instance = u::starts_with(sig, "I:");
  std::string_view body = std::string_view(sig).substr(2);
  const std::size_t bar = body.find('|');
  if (bar != std::string_view::npos) body = body.substr(0, bar);
  for (std::string_view name : u::split(body, ',')) {
    decl.names.emplace_back(name);
  }
  return decl;
}

namespace {

/// Match one declaration against the registry; returns the block index.
int match_block(const Registry& registry, const LocalDeclaration& decl) {
  const auto& blocks = registry.blocks();
  if (decl.is_instance) {
    const std::string& prefix = decl.names.front();
    int found = -1;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (blocks[b].kind != BlockKind::multi_instance) continue;
      const bool all_match = std::all_of(
          blocks[b].components.begin(), blocks[b].components.end(),
          [&](const ComponentEntry& c) {
            return u::starts_with(c.name, prefix);
          });
      if (!all_match) continue;
      if (found != -1) {
        throw SetupError(
            "instance prefix '" + prefix +
            "' matches more than one Multi_Instance block in the "
            "registration file");
      }
      found = static_cast<int>(b);
    }
    if (found == -1) {
      throw SetupError("no Multi_Instance block whose instance names start "
                       "with prefix '" +
                       prefix + "' exists in the registration file");
    }
    return found;
  }

  // Component declaration: exact ordered name-list match against single
  // lines and Multi_Component blocks.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].kind == BlockKind::multi_instance) continue;
    if (blocks[b].names() == decl.names) return static_cast<int>(b);
  }
  std::string available;
  for (const ExecutableBlock& block : blocks) {
    if (!available.empty()) available += "; ";
    available += u::join(block.names(), ",");
  }
  throw SetupError("executable declared components [" +
                   u::join(decl.names, ",") +
                   "] but no matching entry exists in the registration file "
                   "(entries: " +
                   available + ")");
}

void validate_run_size(const ExecutableBlock& block, const ExecutableRun& run) {
  const int required = block.required_size();
  if (required == 0) return;  // unranged single-component executable
  if (required != run.size) {
    throw SetupError(
        "executable [" + u::join(block.names(), ",") + "] runs on " +
        std::to_string(run.size) +
        " processors but the registration file allocates processors 0.." +
        std::to_string(required - 1) + " (" + std::to_string(required) +
        " processors); counts must agree");
  }
  for (const ComponentEntry& c : block.components) {
    if (c.has_range() && c.high >= run.size) {
      throw SetupError("component '" + c.name + "' range " +
                       std::to_string(c.low) + ".." + std::to_string(c.high) +
                       " exceeds its executable's " +
                       std::to_string(run.size) + " processors");
    }
  }
}

}  // namespace

LayoutResolution resolve_layout(const Registry& registry,
                                const std::vector<ExecutableRun>& runs) {
  // Match runs to registry blocks; every block claimed exactly once.
  std::vector<int> block_claimed_by(registry.blocks().size(), -1);
  std::vector<int> block_of_run(runs.size(), -1);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const LocalDeclaration decl = parse_signature(runs[r].signature);
    const int b = match_block(registry, decl);
    if (block_claimed_by[static_cast<std::size_t>(b)] != -1) {
      throw SetupError(
          "two distinct executables both declared components [" +
          u::join(decl.names, ",") +
          "]; component names must be unique across the application "
          "(use a Multi_Instance block for replicated executables)");
    }
    block_claimed_by[static_cast<std::size_t>(b)] = static_cast<int>(r);
    block_of_run[r] = b;
    validate_run_size(registry.blocks()[static_cast<std::size_t>(b)], runs[r]);
  }
  for (std::size_t b = 0; b < block_claimed_by.size(); ++b) {
    if (block_claimed_by[b] == -1) {
      throw SetupError(
          "registration file entry [" +
          u::join(registry.blocks()[b].names(), ",") +
          "] was not provided by any executable in this job");
    }
  }

  // Build the directory: component ids in registration-file order.
  std::vector<int> run_of_block(registry.blocks().size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    run_of_block[static_cast<std::size_t>(block_of_run[r])] =
        static_cast<int>(r);
  }
  std::vector<ComponentRecord> records;
  std::vector<ExecRecord> execs(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    execs[r].exec_index = static_cast<int>(r);
    execs[r].base = runs[r].base;
    execs[r].size = runs[r].size;
    execs[r].kind =
        registry.blocks()[static_cast<std::size_t>(block_of_run[r])].kind;
  }
  int next_id = 0;
  for (std::size_t b = 0; b < registry.blocks().size(); ++b) {
    const ExecutableBlock& block = registry.blocks()[b];
    const ExecutableRun& run =
        runs[static_cast<std::size_t>(run_of_block[b])];
    for (const ComponentEntry& entry : block.components) {
      ComponentRecord record;
      record.name = entry.name;
      record.component_id = next_id++;
      record.exec_index = run_of_block[b];
      record.kind = block.kind;
      if (entry.has_range()) {
        record.global_low = run.base + entry.low;
        record.global_high = run.base + entry.high;
      } else {
        record.global_low = run.base;
        record.global_high = run.base + run.size - 1;
      }
      record.args = entry.args;
      execs[static_cast<std::size_t>(run_of_block[b])].component_ids.push_back(
          record.component_id);
      records.push_back(std::move(record));
    }
  }

  LayoutResolution resolution;
  resolution.directory = Directory(std::move(records), std::move(execs));
  resolution.block_of_run = std::move(block_of_run);
  return resolution;
}

Directory plan_layout(const Registry& registry,
                      const std::vector<PlannedExecutable>& job) {
  if (job.empty()) {
    throw SetupError("plan_layout: empty job description");
  }
  std::vector<std::string> signatures;
  for (const PlannedExecutable& exec : job) {
    if (exec.nprocs <= 0) {
      throw SetupError("plan_layout: executable with nprocs " +
                       std::to_string(exec.nprocs));
    }
    LocalDeclaration decl;
    decl.is_instance = exec.is_instance;
    decl.names = exec.names;
    const std::string sig = declaration_signature(decl);
    for (int p = 0; p < exec.nprocs; ++p) signatures.push_back(sig);
  }
  return resolve_layout(registry, find_runs(signatures)).directory;
}

}  // namespace mph
