#include "src/mph/arguments.hpp"

#include <climits>

#include "src/mph/errors.hpp"
#include "src/util/strings.hpp"

namespace mph {

namespace u = util;

ArgumentSet ArgumentSet::from_tokens(const std::vector<std::string>& tokens) {
  ArgumentSet args;
  for (const std::string& token : tokens) {
    if (const auto kv = u::split_key_value(token)) {
      const auto [key, value] = *kv;
      auto [it, inserted] =
          args.named_.emplace(std::string(key), std::string(value));
      if (!inserted) {
        throw ArgumentError("duplicate key '" + std::string(key) +
                            "' on one registry line");
      }
    } else {
      args.fields_.emplace_back(token);
    }
  }
  return args;
}

const std::string* ArgumentSet::find(std::string_view key) const noexcept {
  const auto it = named_.find(key);
  return it == named_.end() ? nullptr : &it->second;
}

bool ArgumentSet::get(std::string_view key, int& out) const {
  long long wide = 0;
  if (!get(key, wide)) return false;
  if (wide < INT_MIN || wide > INT_MAX) {
    throw ArgumentError("value of '" + std::string(key) +
                        "' does not fit in int: " + std::to_string(wide));
  }
  out = static_cast<int>(wide);
  return true;
}

bool ArgumentSet::get(std::string_view key, long long& out) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return false;
  const auto value = u::parse_int(*raw);
  if (!value.has_value()) {
    throw ArgumentError("value of '" + std::string(key) +
                        "' is not an integer: '" + *raw + "'");
  }
  out = *value;
  return true;
}

bool ArgumentSet::get(std::string_view key, double& out) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return false;
  const auto value = u::parse_double(*raw);
  if (!value.has_value()) {
    throw ArgumentError("value of '" + std::string(key) +
                        "' is not a number: '" + *raw + "'");
  }
  out = *value;
  return true;
}

bool ArgumentSet::get(std::string_view key, bool& out) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return false;
  const auto value = u::parse_bool(*raw);
  if (!value.has_value()) {
    throw ArgumentError("value of '" + std::string(key) +
                        "' is not a boolean (on/off/true/false/yes/no): '" +
                        *raw + "'");
  }
  out = *value;
  return true;
}

bool ArgumentSet::get(std::string_view key, std::string& out) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return false;
  out = *raw;
  return true;
}

bool ArgumentSet::field(std::size_t field_num, std::string& out) const {
  if (field_num == 0) {
    throw ArgumentError("field numbers are 1-based");
  }
  if (field_num > fields_.size()) return false;
  out = fields_[field_num - 1];
  return true;
}

std::vector<std::string> ArgumentSet::to_tokens() const {
  std::vector<std::string> tokens = fields_;
  for (const auto& [key, value] : named_) {
    tokens.push_back(key + "=" + value);
  }
  return tokens;
}

}  // namespace mph
