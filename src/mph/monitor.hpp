// monitor.hpp — mph_mon consumer side: parse published snapshots and
// render the top-style live view.
//
// The producer half lives in minimpi (MetricsRegistry + Monitor publish
// JSONL/Prometheus/socket); this header is everything a *viewer* needs:
// decode one JSONL line back into a MetricsSnapshot, fetch the latest
// line from a file or the monitor's AF_UNIX socket, and turn a pair of
// consecutive snapshots into per-component rates ("ocean: 1.2k msg/s,
// 40% blocked").  `mph_inspect top` is a thin loop over these functions;
// keeping them here makes the whole view pipeline unit-testable without
// spawning the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/metrics.hpp"

namespace mph::mon {

/// Decode one published JSONL line (MetricsSnapshot::to_jsonl output) back
/// into a snapshot.  Throws std::runtime_error on malformed JSON, and on a
/// well-formed document whose "kind" is not "mph_metrics" — the error
/// message names the expected format.
[[nodiscard]] minimpi::MetricsSnapshot parse_snapshot(
    const std::string& json_line);

/// True when `text` looks like an mph_metrics document or JSONL stream
/// (cheap check: first line is an object whose "kind" is "mph_metrics").
/// Used by mph_inspect to tell a metrics file from a Chrome trace export.
[[nodiscard]] bool looks_like_metrics(const std::string& text);

/// Last non-empty line of a (JSONL) file; nullopt when the file does not
/// exist or has no complete line yet.
[[nodiscard]] std::optional<std::string> last_jsonl_line(
    const std::string& path);

/// Connect to a monitor's AF_UNIX socket and read one snapshot line.
/// nullopt when the socket is gone (job finished) or unsupported on this
/// platform.
[[nodiscard]] std::optional<std::string> read_socket_line(
    const std::string& socket_path);

/// One component row of the top view.
struct TopRow {
  std::string component;
  int ranks = 0;
  int alive = 0;
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_high_water = 0;
  double msgs_per_s = 0.0;   ///< delivered rate over the interval (0 first)
  double bytes_per_s = 0.0;  ///< delivered-bytes rate over the interval
  double blocked_pct = 0.0;  ///< share of the interval spent blocked
};

/// The rendered model of one refresh: header totals plus one row per
/// component.  Rates are deltas between `prev` and `cur`; with no previous
/// snapshot they stay zero (first frame of a session).
struct TopView {
  std::uint64_t seq = 0;
  double uptime_s = 0.0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t wildcard_recvs = 0;
  std::uint64_t queue_high_water = 0;
  int ranks = 0;
  int alive = 0;
  std::vector<TopRow> rows;
};

/// Build the view model.  `prev` may be null (no rates yet); when given it
/// must be an earlier snapshot of the same job (cur.t_ns > prev->t_ns),
/// otherwise rates are left at zero rather than reported negative.
[[nodiscard]] TopView build_top_view(const minimpi::MetricsSnapshot* prev,
                                     const minimpi::MetricsSnapshot& cur);

/// Render the view as a fixed-width ASCII table (trailing newline
/// included) — what `mph_inspect top` prints every refresh.
[[nodiscard]] std::string render_top(const TopView& view);

}  // namespace mph::mon
