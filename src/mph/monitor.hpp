// monitor.hpp — mph_mon consumer side: parse published snapshots and
// render the top-style live view.
//
// The producer half lives in minimpi (MetricsRegistry + Monitor publish
// JSONL/Prometheus/socket); this header is everything a *viewer* needs:
// decode one JSONL line back into a MetricsSnapshot, fetch the latest
// line from a file or the monitor's AF_UNIX socket, and turn a pair of
// consecutive snapshots into per-component rates ("ocean: 1.2k msg/s,
// 40% blocked").  `mph_inspect top` is a thin loop over these functions;
// keeping them here makes the whole view pipeline unit-testable without
// spawning the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/metrics.hpp"
#include "src/minimpi/watch/watch.hpp"

namespace mph::mon {

/// Decode one published JSONL line (MetricsSnapshot::to_jsonl output) back
/// into a snapshot.  Throws std::runtime_error on malformed JSON, and on a
/// well-formed document whose "kind" is not "mph_metrics" — the error
/// message names the expected format.
[[nodiscard]] minimpi::MetricsSnapshot parse_snapshot(
    const std::string& json_line);

/// True when `text` looks like an mph_metrics document or JSONL stream
/// (cheap check: first line is an object whose "kind" is "mph_metrics").
/// Used by mph_inspect to tell a metrics file from a Chrome trace export.
[[nodiscard]] bool looks_like_metrics(const std::string& text);

/// Last non-empty line of a (JSONL) file; nullopt when the file does not
/// exist or has no complete line yet.
[[nodiscard]] std::optional<std::string> last_jsonl_line(
    const std::string& path);

/// Rotation/truncation-tolerant variant: the newest line of `path` that
/// parses as an mph_metrics snapshot.  A live viewer can race the producer
/// (half-written tail) or reattach across a log rotation (torn first
/// line); both show up as malformed lines, which are skipped rather than
/// reported — the viewer resyncs on the next complete frame.  nullopt when
/// no line parses.
[[nodiscard]] std::optional<minimpi::MetricsSnapshot> last_valid_snapshot(
    const std::string& path);

/// Decode one mph_health JSONL line (HealthEvent::to_jsonl output) back
/// into an event.  Throws std::runtime_error on malformed JSON or a
/// document whose "kind" is not "mph_health".
[[nodiscard]] minimpi::watch::HealthEvent parse_health_event(
    const std::string& json_line);

/// True when `text` looks like an mph_health document or JSONL stream.
[[nodiscard]] bool looks_like_health(const std::string& text);

/// The trailing `max_events` health events of a JSONL file, oldest first
/// (malformed lines skipped — same tolerance contract as
/// last_valid_snapshot).  Empty when the file is missing or holds none.
[[nodiscard]] std::vector<minimpi::watch::HealthEvent> read_health_tail(
    const std::string& path, std::size_t max_events = 64);

/// Replay a health stream to the alerts still active at its end: the
/// newest fired, not-yet-cleared event per rule/subject, in firing order.
[[nodiscard]] std::vector<minimpi::watch::HealthEvent> active_alerts(
    const std::vector<minimpi::watch::HealthEvent>& events);

/// Connect to a monitor's AF_UNIX socket and read one snapshot line.
/// nullopt when the socket is gone (job finished) or unsupported on this
/// platform.
[[nodiscard]] std::optional<std::string> read_socket_line(
    const std::string& socket_path);

/// One component row of the top view.
struct TopRow {
  std::string component;
  int ranks = 0;
  int alive = 0;
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_high_water = 0;
  double msgs_per_s = 0.0;   ///< delivered rate over the interval (0 first)
  double bytes_per_s = 0.0;  ///< delivered-bytes rate over the interval
  double blocked_pct = 0.0;  ///< share of the interval spent blocked
};

/// The rendered model of one refresh: header totals plus one row per
/// component.  Rates are deltas between `prev` and `cur`; with no previous
/// snapshot they stay zero (first frame of a session).
struct TopView {
  std::uint64_t seq = 0;
  std::uint64_t wall_ms = 0;  ///< publisher's wall clock (0 on old streams)
  double uptime_s = 0.0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t wildcard_recvs = 0;
  std::uint64_t queue_high_water = 0;
  int ranks = 0;
  int alive = 0;
  std::vector<TopRow> rows;
};

/// Build the view model.  `prev` may be null (no rates yet); when given it
/// must be an earlier snapshot of the same job (cur.t_ns > prev->t_ns),
/// otherwise rates are left at zero rather than reported negative.
[[nodiscard]] TopView build_top_view(const minimpi::MetricsSnapshot* prev,
                                     const minimpi::MetricsSnapshot& cur);

/// Render the view as a fixed-width ASCII table (trailing newline
/// included) — what `mph_inspect top` prints every refresh.
[[nodiscard]] std::string render_top(const TopView& view);

// ---------------------------------------------------------------------------
// mph_inspect watch — the cross-job aggregator (farm pre-work): merge the
// metrics and health streams of several jobs into one console.
// ---------------------------------------------------------------------------

/// One watched job, as assembled by the CLI each refresh.
struct WatchJob {
  std::string source;  ///< the socket or JSONL path as given
  bool online = false;  ///< a snapshot was fetched this refresh
  std::optional<minimpi::MetricsSnapshot> snapshot;
  /// Health tail of the job's mph_health.jsonl (oldest first); empty when
  /// the job has no watch enabled or the file is not reachable.
  std::vector<minimpi::watch::HealthEvent> events;
};

/// The merged model of one refresh.
struct WatchView {
  std::vector<WatchJob> jobs;
  std::size_t active = 0;  ///< alerts active across all jobs
  /// Newest events across all jobs (ascending wall_ms, then per-job
  /// order), each tagged with the index of the job it came from.
  std::vector<std::pair<std::size_t, minimpi::watch::HealthEvent>> recent;
};

/// Merge the per-job inputs: computes the active-alert total and the
/// cross-job recent-event ribbon (at most `max_recent` entries).
[[nodiscard]] WatchView build_watch_view(std::vector<WatchJob> jobs,
                                         std::size_t max_recent = 8);

/// Render the merged view (one summary line + active alerts per job, then
/// the recent-event ribbon) — what `mph_inspect watch` prints.
[[nodiscard]] std::string render_watch(const WatchView& view);

}  // namespace mph::mon
