#include "src/mph/registry.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "src/mph/errors.hpp"
#include "src/util/strings.hpp"

namespace mph {

namespace u = util;

int ExecutableBlock::required_size() const noexcept {
  int max_high = -1;
  for (const ComponentEntry& c : components) {
    if (c.has_range()) max_high = std::max(max_high, c.high);
  }
  return max_high + 1;  // 0 when no component carries a range
}

std::vector<std::string> ExecutableBlock::names() const {
  std::vector<std::string> result;
  result.reserve(components.size());
  for (const ComponentEntry& c : components) result.push_back(c.name);
  return result;
}

namespace {

/// Parse one component line: `name [low high] [arg tokens...]`.
ComponentEntry parse_component_line(const std::vector<std::string_view>& tokens,
                                    int line, bool range_required) {
  ComponentEntry entry;
  entry.line = line;
  entry.name = std::string(tokens[0]);
  if (!u::valid_component_name(entry.name)) {
    throw RegistryError(line, "invalid component name '" + entry.name + "'");
  }

  std::size_t next = 1;
  const bool has_range =
      tokens.size() >= 3 && u::parse_int(tokens[1]).has_value() &&
      u::parse_int(tokens[2]).has_value();
  if (has_range) {
    entry.low = static_cast<int>(*u::parse_int(tokens[1]));
    entry.high = static_cast<int>(*u::parse_int(tokens[2]));
    if (entry.low < 0 || entry.high < entry.low) {
      throw RegistryError(line, "bad processor range " +
                                    std::to_string(entry.low) + " " +
                                    std::to_string(entry.high) +
                                    " for component '" + entry.name + "'");
    }
    next = 3;
  } else if (range_required) {
    throw RegistryError(line,
                        "component '" + entry.name +
                            "' inside a block requires a processor range "
                            "(low high)");
  }

  std::vector<std::string> arg_tokens;
  for (std::size_t i = next; i < tokens.size(); ++i) {
    arg_tokens.emplace_back(tokens[i]);
  }
  if (static_cast<int>(arg_tokens.size()) > Registry::kMaxArgumentTokens) {
    throw RegistryError(
        line, "component '" + entry.name + "' carries " +
                  std::to_string(arg_tokens.size()) +
                  " argument tokens; at most " +
                  std::to_string(Registry::kMaxArgumentTokens) +
                  " character strings may be appended to a line");
  }
  try {
    entry.args = ArgumentSet::from_tokens(arg_tokens);
  } catch (const ArgumentError& e) {
    throw RegistryError(line, e.what());
  }
  return entry;
}

/// Validate a completed block and append it.
void finish_block(std::vector<ExecutableBlock>& blocks, ExecutableBlock block) {
  if (block.components.empty()) {
    throw RegistryError(block.line, std::string(block_kind_name(block.kind)) +
                                        " executable declares no components");
  }
  // §4.4: "There is no limit of the number of instances" — the 10-component
  // ceiling applies to multi-component executables only.
  if (block.kind != BlockKind::multi_instance &&
      static_cast<int>(block.components.size()) >
          Registry::kMaxComponentsPerExecutable) {
    throw RegistryError(
        block.line,
        std::string(block_kind_name(block.kind)) + " executable declares " +
            std::to_string(block.components.size()) +
            " components; each executable could contain up to " +
            std::to_string(Registry::kMaxComponentsPerExecutable));
  }
  if (block.kind == BlockKind::multi_instance) {
    // Instances must tile the executable contiguously from 0: the paper's
    // registration files list Ocean1 0 15 / Ocean2 16 31 / Ocean3 32 47.
    std::vector<ComponentEntry> sorted = block.components;
    std::sort(sorted.begin(), sorted.end(),
              [](const ComponentEntry& a, const ComponentEntry& b) {
                return a.low < b.low;
              });
    int expected_low = 0;
    for (const ComponentEntry& c : sorted) {
      if (c.low != expected_low) {
        throw RegistryError(
            c.line, "instance '" + c.name + "' starts at processor " +
                        std::to_string(c.low) + " but " +
                        std::to_string(expected_low) +
                        " was expected: instances must tile the executable "
                        "contiguously without gaps or overlap");
      }
      expected_low = c.high + 1;
    }
  }
  blocks.push_back(std::move(block));
}

}  // namespace

Registry Registry::parse(std::string_view text) {
  enum class Where { before_begin, top_level, in_block, after_end };

  Registry registry;
  Where where = Where::before_begin;
  ExecutableBlock current;
  int line_no = 0;

  std::string_view rest = text;
  while (!rest.empty() || line_no == 0) {
    std::string_view line;
    const std::size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      line = rest;
      rest = {};
    } else {
      line = rest.substr(0, nl);
      rest.remove_prefix(nl + 1);
    }
    ++line_no;
    line = u::trim(u::strip_comment(line));
    if (line.empty()) {
      if (rest.empty()) break;
      continue;
    }

    const std::vector<std::string_view> tokens = u::split_ws(line);
    const std::string_view head = tokens[0];

    if (u::iequals(head, "BEGIN")) {
      if (where != Where::before_begin) {
        throw RegistryError(line_no, "unexpected BEGIN");
      }
      where = Where::top_level;
      continue;
    }
    if (where == Where::before_begin) {
      throw RegistryError(line_no,
                          "registration file must start with BEGIN");
    }
    if (where == Where::after_end) {
      throw RegistryError(line_no, "content after END");
    }

    if (u::iequals(head, "END")) {
      if (where == Where::in_block) {
        throw RegistryError(line_no, "END inside an unterminated " +
                                         std::string(block_kind_name(
                                             current.kind)) +
                                         " block");
      }
      where = Where::after_end;
      continue;
    }

    if (u::iequals(head, "Multi_Component_Begin") ||
        u::iequals(head, "Multi_Instance_Begin")) {
      if (where == Where::in_block) {
        throw RegistryError(line_no, "nested executable blocks");
      }
      current = ExecutableBlock{};
      current.kind = u::iequals(head, "Multi_Component_Begin")
                         ? BlockKind::multi_component
                         : BlockKind::multi_instance;
      current.line = line_no;
      where = Where::in_block;
      continue;
    }

    if (u::iequals(head, "Multi_Component_End") ||
        u::iequals(head, "Multi_Instance_End")) {
      const BlockKind closing = u::iequals(head, "Multi_Component_End")
                                    ? BlockKind::multi_component
                                    : BlockKind::multi_instance;
      if (where != Where::in_block || current.kind != closing) {
        throw RegistryError(line_no, "unmatched " + std::string(head));
      }
      finish_block(registry.blocks_, std::move(current));
      current = ExecutableBlock{};
      where = Where::top_level;
      continue;
    }

    // A component line.
    if (where == Where::in_block) {
      current.components.push_back(
          parse_component_line(tokens, line_no, /*range_required=*/true));
    } else {
      // A bare line at top level is a single-component executable; an
      // optional range asserts the executable's size.
      ExecutableBlock single;
      single.kind = BlockKind::single;
      single.line = line_no;
      single.components.push_back(
          parse_component_line(tokens, line_no, /*range_required=*/false));
      finish_block(registry.blocks_, std::move(single));
    }
  }

  if (where == Where::before_begin) {
    throw RegistryError(1, "empty registration file (missing BEGIN)");
  }
  if (where == Where::in_block) {
    throw RegistryError(line_no, "unterminated " +
                                     std::string(block_kind_name(current.kind)) +
                                     " block");
  }
  if (where == Where::top_level) {
    throw RegistryError(line_no, "missing END");
  }
  if (registry.blocks_.empty()) {
    throw RegistryError(line_no, "registration file declares no components");
  }

  // Component names must be globally unique: they are the identifiers the
  // whole handshake keys on.
  std::set<std::string, std::less<>> seen;
  for (const ExecutableBlock& block : registry.blocks_) {
    for (const ComponentEntry& c : block.components) {
      if (!seen.insert(c.name).second) {
        throw RegistryError(c.line,
                            "duplicate component name '" + c.name + "'");
      }
    }
  }
  return registry;
}

Registry Registry::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw RegistryError(0, "cannot open registration file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

int Registry::total_components() const noexcept {
  int total = 0;
  for (const ExecutableBlock& block : blocks_) {
    total += static_cast<int>(block.components.size());
  }
  return total;
}

bool Registry::has_component(std::string_view name) const noexcept {
  for (const ExecutableBlock& block : blocks_) {
    for (const ComponentEntry& c : block.components) {
      if (c.name == name) return true;
    }
  }
  return false;
}

bool Registry::all_single_component() const noexcept {
  return std::all_of(blocks_.begin(), blocks_.end(),
                     [](const ExecutableBlock& b) {
                       return b.kind == BlockKind::single;
                     });
}

std::string Registry::to_text() const {
  std::ostringstream out;
  out << "BEGIN\n";
  for (const ExecutableBlock& block : blocks_) {
    if (block.kind == BlockKind::multi_component) {
      out << "Multi_Component_Begin\n";
    } else if (block.kind == BlockKind::multi_instance) {
      out << "Multi_Instance_Begin\n";
    }
    for (const ComponentEntry& c : block.components) {
      out << c.name;
      if (c.has_range()) out << ' ' << c.low << ' ' << c.high;
      for (const std::string& token : c.args.to_tokens()) out << ' ' << token;
      out << '\n';
    }
    if (block.kind == BlockKind::multi_component) {
      out << "Multi_Component_End\n";
    } else if (block.kind == BlockKind::multi_instance) {
      out << "Multi_Instance_End\n";
    }
  }
  out << "END\n";
  return out.str();
}

}  // namespace mph
