// redirect.hpp — multi-channel standard-output redirection (paper §5.4).
//
// Five components writing to one terminal interleave into an undecipherable
// mess; MPH routes each component's output to its own log file.  The rule,
// exactly as the paper: local processor 0 of a component writes to
// `<component_name>.log`; "all other occasional writes from all other
// processors are stored in one combined standard output file".
//
// In a thread-per-rank process, POSIX stdout cannot be redirected per rank,
// so the observable contract is preserved through an explicit stream: after
// `Mph::redirect_output(dir)`, `Mph::out()` returns the rank's channel.
// Writes are line-atomic (complete lines are committed on '\n'/flush), and
// several ranks — even across components — may share one sink file safely.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace mph {

namespace detail {
/// A shared, mutex-protected output file.  One Sink exists per path
/// process-wide, so every rank appending to "mph_combined.log" serializes
/// through the same lock.
class Sink;

/// streambuf that accumulates until end-of-line, then commits whole lines
/// to the Sink atomically.
class LineBuf;
}  // namespace detail

/// A rank's redirected output channel.  Movable; flushes on destruction.
class OutputChannel {
 public:
  OutputChannel();
  ~OutputChannel();
  OutputChannel(OutputChannel&&) noexcept;
  OutputChannel& operator=(OutputChannel&&) noexcept;
  OutputChannel(const OutputChannel&) = delete;
  OutputChannel& operator=(const OutputChannel&) = delete;

  /// The stream to write component output to.
  [[nodiscard]] std::ostream& stream();

  /// Path of the file this channel appends to.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Flush any buffered partial line.
  void flush();

  /// Complete lines committed through this channel so far (mph_trace feeds
  /// this into the per-rank `output_lines(<path>)` counter).
  [[nodiscard]] std::uint64_t lines() const noexcept;

  /// Shared handle to the live line counter, for mph_mon gauge probes.  The
  /// monitor thread samples it at snapshot time — possibly after the channel
  /// itself is gone — so it is shared, not borrowed.  Null before open.
  [[nodiscard]] std::shared_ptr<const std::atomic<std::uint64_t>>
  lines_counter() const noexcept;

 private:
  friend class OutputRouter;
  OutputChannel(std::shared_ptr<detail::Sink> sink, std::string path,
                std::string prefix);

  std::string path_;
  std::unique_ptr<detail::LineBuf> buf_;
  std::unique_ptr<std::ostream> stream_;
};

/// Process-wide router from (component, role) to channels.
class OutputRouter {
 public:
  /// The process-wide router instance.
  static OutputRouter& instance();

  /// Open the channel for a rank of `component`:
  /// `<dir>/<component>.log` when `component_root` (local proc 0),
  /// `<dir>/mph_combined.log` otherwise.  When `prefix_lines` is set, each
  /// committed line is prefixed with "[component:local_rank] " — essential
  /// in the combined file.
  OutputChannel open(const std::string& dir, const std::string& component,
                     int local_rank, bool component_root,
                     bool prefix_lines = true);

  /// Drop cached sinks whose files are closed (between jobs / in tests).
  void reset();

  /// Name of the combined (non-root ranks) output file.
  static constexpr const char* kCombinedLogName = "mph_combined.log";

 private:
  OutputRouter() = default;
  std::mutex mutex_;
  std::map<std::string, std::weak_ptr<detail::Sink>> sinks_;
};

}  // namespace mph
