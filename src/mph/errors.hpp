// errors.hpp — typed error hierarchy of the MPH library.
//
// All misconfiguration surfaces as an exception carrying enough context
// (file line, component name, candidates) for the user to fix the
// registration file or setup call — the failure modes the paper's §3
// flexibility goals make common during model development.
#pragma once

#include <stdexcept>
#include <string>

namespace mph {

/// Base class for every MPH error.
class MphError : public std::runtime_error {
 public:
  explicit MphError(const std::string& what)
      : std::runtime_error("MPH: " + what) {}
};

/// Malformed registration file ("processors_map.in").
class RegistryError : public MphError {
 public:
  RegistryError(int line, const std::string& what)
      : MphError("registration file line " + std::to_string(line) + ": " +
                 what),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Handshake failure: the executables present in the job and the entries in
/// the registration file do not agree.
class SetupError : public MphError {
 public:
  explicit SetupError(const std::string& what)
      : MphError("setup: " + what) {}
};

/// Lookup of an unknown component name (or out-of-range local rank).
class LookupError : public MphError {
 public:
  explicit LookupError(const std::string& what)
      : MphError("lookup: " + what) {}
};

/// An instance argument exists but cannot be converted to the requested type.
class ArgumentError : public MphError {
 public:
  explicit ArgumentError(const std::string& what)
      : MphError("argument: " + what) {}
};

}  // namespace mph
