// errors.hpp — typed error hierarchy of the MPH library.
//
// All misconfiguration surfaces as an exception carrying enough context
// (file line, component name, candidates) for the user to fix the
// registration file or setup call — the failure modes the paper's §3
// flexibility goals make common during model development.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace mph {

/// Base class for every MPH error.
class MphError : public std::runtime_error {
 public:
  explicit MphError(const std::string& what)
      : std::runtime_error("MPH: " + what) {}
};

/// Malformed registration file ("processors_map.in").
class RegistryError : public MphError {
 public:
  RegistryError(int line, const std::string& what)
      : MphError("registration file line " + std::to_string(line) + ": " +
                 what),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Handshake failure: the executables present in the job and the entries in
/// the registration file do not agree.
class SetupError : public MphError {
 public:
  explicit SetupError(const std::string& what)
      : MphError("setup: " + what) {}
};

/// Lookup of an unknown component name (or out-of-range local rank).
class LookupError : public MphError {
 public:
  explicit LookupError(const std::string& what)
      : MphError("lookup: " + what) {}
};

/// An instance argument exists but cannot be converted to the requested type.
class ArgumentError : public MphError {
 public:
  explicit ArgumentError(const std::string& what)
      : MphError("argument: " + what) {}
};

/// A peer component (or ensemble member) failed at runtime.  Thrown by
/// Mph::require_alive when MPH_ping reports the component dead; carries the
/// structured failure (failing world rank and operation) when known.
class ComponentFailedError : public MphError {
 public:
  ComponentFailedError(std::string component, int world_rank,
                       std::string operation, const std::string& detail)
      : MphError("component '" + component + "' failed" +
                 (world_rank >= 0
                      ? " (world rank " + std::to_string(world_rank) + ")"
                      : "") +
                 (operation.empty() ? "" : " in " + operation) +
                 (detail.empty() ? "" : ": " + detail)),
        component_(std::move(component)),
        world_rank_(world_rank),
        operation_(std::move(operation)) {}

  /// Name of the dead component.
  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }
  /// World rank whose failure killed it, or -1 when unknown.
  [[nodiscard]] int world_rank() const noexcept { return world_rank_; }
  /// Operation that failed (kill-point name, "user code", ...; may be "").
  [[nodiscard]] const std::string& operation() const noexcept {
    return operation_;
  }

 private:
  std::string component_;
  int world_rank_;
  std::string operation_;
};

/// A peer stayed dead past the liveness retry budget.  Thrown by
/// Mph::await_alive (and require_alive under LivenessOptions with a
/// timeout) once every attempt was used; names the peer, how many times it
/// was probed, and how long the caller waited in total.
class PeerTimeoutError : public MphError {
 public:
  PeerTimeoutError(std::string component, int attempts,
                   std::chrono::milliseconds elapsed)
      : MphError("liveness: component '" + component + "' still dead after " +
                 std::to_string(attempts) + " ping attempt" +
                 (attempts == 1 ? "" : "s") + " over " +
                 std::to_string(elapsed.count()) + " ms"),
        component_(std::move(component)),
        attempts_(attempts),
        elapsed_(elapsed) {}

  /// Name of the component that never came back.
  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }
  /// Number of ping probes made before giving up.
  [[nodiscard]] int attempts() const noexcept { return attempts_; }
  /// Wall-clock time spent waiting across all attempts.
  [[nodiscard]] std::chrono::milliseconds elapsed() const noexcept {
    return elapsed_;
  }

 private:
  std::string component_;
  int attempts_;
  std::chrono::milliseconds elapsed_;
};

}  // namespace mph
