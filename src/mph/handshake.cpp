#include "src/mph/handshake.hpp"

#include <optional>
#include <set>
#include <span>
#include <string_view>

#include "src/minimpi/collectives.hpp"
#include "src/mph/errors.hpp"
#include "src/mph/layout.hpp"
#include "src/util/diagnostics.hpp"
#include "src/util/strings.hpp"
#include "src/util/timer.hpp"

namespace mph {

namespace u = util;
using minimpi::Comm;
using minimpi::rank_t;

namespace {

void validate_declaration(const LocalDeclaration& decl) {
  if (decl.names.empty()) {
    throw SetupError("setup call declares no component names");
  }
  if (decl.is_instance && decl.names.size() != 1) {
    throw SetupError("multi_instance takes exactly one name prefix");
  }
  if (!decl.is_instance &&
      static_cast<int>(decl.names.size()) >
          Registry::kMaxComponentsPerExecutable) {
    throw SetupError("setup call declares " +
                     std::to_string(decl.names.size()) +
                     " components; each executable could contain up to " +
                     std::to_string(Registry::kMaxComponentsPerExecutable));
  }
  std::set<std::string, std::less<>> seen;
  for (const std::string& name : decl.names) {
    if (!u::valid_component_name(name)) {
      throw SetupError("invalid component name '" + name + "' in setup call");
    }
    if (!seen.insert(name).second) {
      throw SetupError("component name '" + name +
                       "' repeated in one setup call");
    }
  }
}

/// True when no two components of the block share a processor.
bool block_is_disjoint(const ExecutableBlock& block) {
  for (std::size_t i = 0; i < block.components.size(); ++i) {
    for (std::size_t j = i + 1; j < block.components.size(); ++j) {
      const ComponentEntry& a = block.components[i];
      const ComponentEntry& b = block.components[j];
      if (a.low <= b.high && b.low <= a.high) return false;
    }
  }
  return true;
}

}  // namespace

HandshakeResult handshake(const Comm& world, const Registry& registry,
                          const LocalDeclaration& declaration,
                          const HandshakeOptions& options) {
  const u::Timer timer;
  minimpi::Tracer* tracer = world.job().tracer();
  minimpi::MetricsRegistry* metrics = world.job().metrics();
  const minimpi::TraceSpan phase(tracer, world.global_of(world.rank()),
                                 minimpi::TraceOp::phase, "handshake",
                                 minimpi::kPhaseHandshake);
  // Record the handshake duration on every exit path (the fast path returns
  // early) so the monitor's per-rank handshake_ns gauge is always set.
  struct HandshakeClock {
    minimpi::MetricsRegistry* metrics;
    minimpi::rank_t rank;
    std::uint64_t t0;
    ~HandshakeClock() {
      if (metrics != nullptr) {
        metrics->set_handshake_ns(rank, metrics->now_ns() - t0);
      }
    }
  } handshake_clock{metrics, world.global_of(world.rank()),
                    metrics != nullptr ? metrics->now_ns() : 0};
  validate_declaration(declaration);

  // --- Steps 1-2 (§6): allgather signatures, derive executable runs. ------
  const std::string my_signature = pinned_signature(declaration, options);
  std::vector<std::string> signatures;
  {
    const minimpi::TraceSpan stage(tracer, world.global_of(world.rank()),
                                   minimpi::TraceOp::phase,
                                   "signature_allgather",
                                   minimpi::kPhaseSignatures);
    signatures = minimpi::allgather_strings(world, my_signature);
  }

  // Contract-version agreement: every executable that pins a contract must
  // pin the SAME one.  Mismatches fail here — at registration, before any
  // model message — on every rank identically (the signature vector is
  // identical everywhere).  Unpinned executables are exempt.
  {
    std::string pin;
    rank_t pin_rank = 0;
    for (rank_t r = 0; r < static_cast<rank_t>(signatures.size()); ++r) {
      const std::string other =
          signature_contract_pin(signatures[static_cast<std::size_t>(r)]);
      if (other.empty()) continue;
      if (pin.empty()) {
        pin = other;
        pin_rank = r;
      } else if (other != pin) {
        throw SetupError(
            "contract version mismatch: world rank " +
            std::to_string(pin_rank) + " pins contract " + pin +
            " but world rank " + std::to_string(r) + " pins contract " +
            other + " — rebuild the executables against one contract");
      }
    }
  }
  const std::vector<ExecutableRun> runs = find_runs(signatures);

  // --- Step 3: match runs against the registry, build the directory. ------
  // Deterministic from identical inputs, so every rank throws (or not)
  // identically — errors never strand a subset of ranks in a collective.
  const std::uint64_t t_layout =
      tracer != nullptr ? tracer->now_ns() : 0;
  LayoutResolution resolution = resolve_layout(registry, runs);
  if (tracer != nullptr) {
    tracer->span_end(world.global_of(world.rank()), minimpi::TraceOp::phase,
                     "layout_resolve", t_layout, minimpi::any_source,
                     minimpi::kWorldContext, minimpi::kPhaseLayout);
  }

  HandshakeResult result;
  result.directory = std::move(resolution.directory);
  result.world = world;
  result.declaration = declaration;
  result.options = options;

  // Publish the established layout to the job blackboard so that a
  // respawned member can rebuild this exact directory later without any
  // collective involving survivors (rejoin_handshake).  Rank 0 only — the
  // inputs are identical everywhere, so one copy suffices.
  if (world.rank() == 0) {
    world.job().put_shared(kRegistryKey, registry.to_text());
    world.job().put_shared(kSignaturesKey, u::join(signatures, "\n"));
  }

  // Locate my run.
  const rank_t my_world = world.rank();
  int my_run = -1;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (my_world >= runs[r].base && my_world < runs[r].base + runs[r].size) {
      my_run = static_cast<int>(r);
      break;
    }
  }
  if (my_run < 0) {
    // find_runs covers every rank of the allgathered signature vector, so
    // this indicates a substrate bug (e.g. a short allgather) — fail loudly
    // instead of indexing runs[-1].
    throw SetupError("world rank " + std::to_string(my_world) +
                     " is not covered by any executable run (" +
                     std::to_string(signatures.size()) +
                     " signatures gathered, " + std::to_string(runs.size()) +
                     " runs derived)");
  }
  result.exec_index = my_run;
  const ExecutableRun& run = runs[static_cast<std::size_t>(my_run)];
  const ExecutableBlock& my_block =
      registry.blocks()[static_cast<std::size_t>(
          resolution.block_of_run[static_cast<std::size_t>(my_run)])];
  const rank_t rel = my_world - run.base;  // executable-relative rank

  // Label this rank with its primary component for failure reports, and —
  // under MIME isolation — register ensemble members into per-instance
  // failure domains.  Both must happen before the first split: a failure
  // during communicator creation should already be attributed (and
  // contained) correctly.
  {
    const std::vector<int>& ids =
        result.directory.execs()[static_cast<std::size_t>(my_run)]
            .component_ids;
    int primary = -1;
    rank_t local = rel;  // rank within the primary component
    if (my_block.kind == BlockKind::single) {
      primary = ids.front();
    } else {
      for (std::size_t i = 0; i < my_block.components.size(); ++i) {
        const ComponentEntry& c = my_block.components[i];
        if (rel >= c.low && rel <= c.high) {
          primary = ids[i];
          local = rel - c.low;
          break;
        }
      }
    }
    if (primary >= 0) {
      const ComponentRecord& record = result.directory.component(primary);
      world.job().set_rank_label(my_world, record.name);
      if (metrics != nullptr) {
        // The monitor's per-component rollup keys off this name.
        metrics->set_component(my_world, record.name);
      }
      if (tracer != nullptr) {
        // Trace tracks read in the paper's naming scheme:
        // component[instance]:local_rank.
        tracer->set_track_name(my_world,
                               record.name + ":" + std::to_string(local));
      }
      if (options.isolate_instances &&
          my_block.kind == BlockKind::multi_instance) {
        world.job().join_domain(my_world, primary, record.name);
      }
    }
  }

  // --- Step 4 (§6.1/§6.2): create communicators. ---------------------------
  const minimpi::TraceSpan comm_setup(tracer, my_world,
                                      minimpi::TraceOp::phase, "comm_setup",
                                      minimpi::kPhaseCommSetup);
  if (options.single_split_fast_path && registry.all_single_component()) {
    // §6.1: one split of world with color = component id.
    const int my_component =
        result.directory.execs()[static_cast<std::size_t>(my_run)]
            .component_ids.front();
    Comm comp = world.split(my_component, my_world);
    result.exec_comm = comp;
    result.my_component_ids.push_back(my_component);
    result.my_component_comms.push_back(std::move(comp));
    MPH_DIAG_LOG(info) << "MPH handshake (fast path) done in "
                       << timer.micros() << " us";
    return result;
  }

  // General path: split world into executables first.
  result.exec_comm = world.split(my_run, my_world);

  const std::vector<int>& block_component_ids =
      result.directory.execs()[static_cast<std::size_t>(my_run)].component_ids;

  switch (my_block.kind) {
    case BlockKind::single: {
      result.my_component_ids.push_back(block_component_ids.front());
      result.my_component_comms.push_back(result.exec_comm);
      break;
    }
    case BlockKind::multi_instance: {
      // Instances tile the executable; exactly one covers `rel`.
      int my_instance = -1;
      for (std::size_t i = 0; i < my_block.components.size(); ++i) {
        const ComponentEntry& c = my_block.components[i];
        if (rel >= c.low && rel <= c.high) {
          my_instance = static_cast<int>(i);
          break;
        }
      }
      if (my_instance < 0) {
        throw SetupError("rank " + std::to_string(rel) +
                         " of a multi-instance executable is not covered by "
                         "any instance range");
      }
      Comm comp = result.exec_comm.split(my_instance, rel);
      result.my_component_ids.push_back(
          block_component_ids[static_cast<std::size_t>(my_instance)]);
      result.my_component_comms.push_back(std::move(comp));
      break;
    }
    case BlockKind::multi_component: {
      if (block_is_disjoint(my_block)) {
        // §6.2 disjoint case: a single split builds every component
        // communicator at once.
        int my_component = -1;  // index within the block
        for (std::size_t i = 0; i < my_block.components.size(); ++i) {
          const ComponentEntry& c = my_block.components[i];
          if (rel >= c.low && rel <= c.high) {
            my_component = static_cast<int>(i);
            break;
          }
        }
        Comm comp = result.exec_comm.split(
            my_component < 0 ? minimpi::undefined : my_component, rel);
        if (my_component >= 0) {
          result.my_component_ids.push_back(
              block_component_ids[static_cast<std::size_t>(my_component)]);
          result.my_component_comms.push_back(std::move(comp));
        }
      } else {
        // §6.2 overlap case: one split per component, every exec rank
        // participating in each (color = member / undefined).
        for (std::size_t i = 0; i < my_block.components.size(); ++i) {
          const ComponentEntry& c = my_block.components[i];
          const bool covers = rel >= c.low && rel <= c.high;
          Comm comp =
              result.exec_comm.split(covers ? 1 : minimpi::undefined, rel);
          if (covers) {
            result.my_component_ids.push_back(block_component_ids[i]);
            result.my_component_comms.push_back(std::move(comp));
          }
        }
      }
      break;
    }
  }

  MPH_DIAG_LOG(info) << "MPH handshake done in " << timer.micros() << " us";
  return result;
}

HandshakeResult rejoin_handshake(const Comm& world,
                                 const LocalDeclaration& declaration,
                                 const HandshakeOptions& options) {
  const u::Timer timer;
  validate_declaration(declaration);
  minimpi::Job& job = world.job();
  minimpi::Tracer* tracer = job.tracer();
  minimpi::MetricsRegistry* metrics = job.metrics();
  const rank_t my_world = world.rank();

  // Rebuild the layout from the blackboard instead of an allgather: the
  // survivors are mid-run and cannot join a collective.  resolve_layout is
  // pure and deterministic, so the directory built here is byte-identical
  // to every survivor's copy.
  const std::optional<std::string> registry_text = job.get_shared(kRegistryKey);
  const std::optional<std::string> signature_text =
      job.get_shared(kSignaturesKey);
  if (!registry_text.has_value() || !signature_text.has_value()) {
    throw SetupError(
        "rejoin: the job blackboard holds no published layout — the "
        "original handshake must complete before a member can rejoin");
  }
  const Registry registry = Registry::parse(*registry_text);
  std::vector<std::string> signatures;
  for (const std::string_view sig : u::split(*signature_text, '\n')) {
    signatures.emplace_back(sig);
  }
  if (static_cast<int>(signatures.size()) != world.size()) {
    throw SetupError("rejoin: published layout covers " +
                     std::to_string(signatures.size()) + " ranks, world has " +
                     std::to_string(world.size()));
  }
  const std::string my_signature = pinned_signature(declaration, options);
  if (signatures[static_cast<std::size_t>(my_world)] != my_signature) {
    throw SetupError(
        "rejoin: world rank " + std::to_string(my_world) +
        " originally declared '" +
        signatures[static_cast<std::size_t>(my_world)] +
        "' but the replacement declares '" + my_signature + "'");
  }
  const std::vector<ExecutableRun> runs = find_runs(signatures);
  LayoutResolution resolution = resolve_layout(registry, runs);

  HandshakeResult result;
  result.directory = std::move(resolution.directory);
  result.world = world;
  result.declaration = declaration;
  result.options = options;

  int my_run = -1;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (my_world >= runs[r].base && my_world < runs[r].base + runs[r].size) {
      my_run = static_cast<int>(r);
      break;
    }
  }
  if (my_run < 0) {
    throw SetupError("rejoin: world rank " + std::to_string(my_world) +
                     " is not covered by any executable run");
  }
  result.exec_index = my_run;
  const ExecutableRun& run = runs[static_cast<std::size_t>(my_run)];
  const ExecutableBlock& my_block =
      registry.blocks()[static_cast<std::size_t>(
          resolution.block_of_run[static_cast<std::size_t>(my_run)])];
  const rank_t rel = my_world - run.base;

  const std::vector<int>& ids =
      result.directory.execs()[static_cast<std::size_t>(my_run)].component_ids;
  int primary = -1;
  rank_t local = rel;
  if (my_block.kind == BlockKind::single) {
    primary = ids.front();
  } else {
    for (std::size_t i = 0; i < my_block.components.size(); ++i) {
      const ComponentEntry& c = my_block.components[i];
      if (rel >= c.low && rel <= c.high) {
        primary = ids[i];
        local = rel - c.low;
        break;
      }
    }
  }
  if (primary < 0) {
    throw SetupError("rejoin: world rank " + std::to_string(my_world) +
                     " is not covered by any component of its executable");
  }
  const ComponentRecord& record = result.directory.component(primary);
  job.set_rank_label(my_world, record.name);
  if (metrics != nullptr) metrics->set_component(my_world, record.name);
  if (tracer != nullptr) {
    tracer->set_track_name(my_world,
                           record.name + ":" + std::to_string(local));
  }
  if (options.isolate_instances &&
      my_block.kind == BlockKind::multi_instance) {
    // Idempotent: the heal kept the domain registered, so the replacement
    // rank re-joins the same slot.
    job.join_domain(my_world, primary, record.name);
  }

  // The only collective of the rejoin: the member communicator, over
  // exactly the ranks being respawned together.  Survivors are uninvolved.
  std::vector<rank_t> members;
  members.reserve(static_cast<std::size_t>(record.size()));
  for (rank_t r = record.global_low; r <= record.global_high; ++r) {
    members.push_back(r);
  }
  Comm comp =
      world.create_ordered_world(std::span<const rank_t>(members));
  // Degradation vs. the full handshake (see handshake.hpp): the member
  // communicator stands in for the executable communicator.
  result.exec_comm = comp;
  result.my_component_ids.push_back(primary);
  result.my_component_comms.push_back(std::move(comp));
  MPH_DIAG_LOG(info) << "MPH rejoin handshake for '" << record.name
                     << "' done in " << timer.micros() << " us";
  return result;
}

}  // namespace mph
