// version.hpp — library version.
//
// The paper describes MPH versions 1-4 (§7): v1 = SCME, v2 = MCSE,
// v3 = MCME unified interface, v4 = multi-instance ensembles + argument
// passing.  This C++ implementation provides the full v4 feature set (the
// "C/C++ version of MPH" listed as further work in §9), hence 4.0.0.
#pragma once

namespace mph {

inline constexpr int kVersionMajor = 4;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "4.0.0";

}  // namespace mph
