// arguments.hpp — per-component runtime arguments (paper §4.4).
//
// A registration-file line may carry up to five trailing tokens:
//
//   Ocean1  0 15  inf1 outf1 logf alpha=3 debug=on
//
// Tokens of the form `key=value` become named arguments; the rest are
// positional "fields" (1-based, matching `MPH_get_argument(field_num=...)`).
// The paper implements typed retrieval with Fortran 90 overloading; here the
// same contract is expressed with C++ overloads: `get("alpha", alpha)` fills
// an int with 3, `get("beta", beta)` fills a double with 4.5, and
// `field(1, fname)` yields the first positional string.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mph {

class ArgumentSet {
 public:
  ArgumentSet() = default;

  /// Build from the raw trailing tokens of a registry line.
  /// Throws ArgumentError when a duplicate key appears.
  static ArgumentSet from_tokens(const std::vector<std::string>& tokens);

  /// Number of positional fields.
  [[nodiscard]] std::size_t field_count() const noexcept {
    return fields_.size();
  }

  /// Number of named (key=value) arguments.
  [[nodiscard]] std::size_t named_count() const noexcept {
    return named_.size();
  }

  [[nodiscard]] bool empty() const noexcept {
    return fields_.empty() && named_.empty();
  }

  [[nodiscard]] bool has(std::string_view key) const noexcept {
    return named_.contains(key);
  }

  /// Typed retrieval; returns false when the key is absent, throws
  /// ArgumentError when present but not convertible.
  bool get(std::string_view key, int& out) const;
  bool get(std::string_view key, long long& out) const;
  bool get(std::string_view key, double& out) const;
  bool get(std::string_view key, bool& out) const;
  bool get(std::string_view key, std::string& out) const;

  /// Positional field retrieval, 1-based per the paper's
  /// `MPH_get_argument(field_num=1, field_val=fname)`.  Returns false when
  /// fewer fields exist.
  bool field(std::size_t field_num, std::string& out) const;

  [[nodiscard]] const std::vector<std::string>& fields() const noexcept {
    return fields_;
  }
  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& named()
      const noexcept {
    return named_;
  }

  /// Re-serialize as registry-line tokens (round-trip support).
  [[nodiscard]] std::vector<std::string> to_tokens() const;

  friend bool operator==(const ArgumentSet&, const ArgumentSet&) = default;

 private:
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;

  std::vector<std::string> fields_;
  std::map<std::string, std::string, std::less<>> named_;
};

}  // namespace mph
