// compat.hpp — paper-spelling compatibility layer.
//
// The paper's Fortran 90 API is global-state based: after
// MPH_components_setup, any routine may call MPH_local_proc_id() with no
// handle.  For code being ported from the Fortran MPH (or for examples that
// want to read exactly like the paper's listings), this layer mirrors those
// names on top of a per-thread current Mph handle:
//
//   minimpi::Comm atmosphere_world =
//       mph::compat::MPH_components_setup(world, source, "atmosphere");
//   int me = mph::compat::MPH_local_proc_id();
//
// Each rank-thread owns one current handle (set implicitly by the
// MPH_*setup calls).  New C++ code should prefer the explicit mph::Mph
// object API.
#pragma once

#include <string>
#include <vector>

#include "src/mph/mph.hpp"

namespace mph::compat {

/// The calling thread's current handle; throws MphError when no setup call
/// has been made on this thread.
[[nodiscard]] Mph& current();

/// True when a setup call has been made on this thread.
[[nodiscard]] bool has_current() noexcept;

/// Install/replace the calling thread's handle explicitly.
void set_current(Mph handle);

/// Drop the calling thread's handle (end of the component's run).
void clear_current() noexcept;

/// Paper §4.1/§4.3: register this executable's components and return the
/// communicator of the *first* name-tag — mirroring
/// `atmosphere_World = MPH_components_setup(name1="atmosphere")`.
minimpi::Comm MPH_components_setup(const minimpi::Comm& world,
                                   const RegistrySource& source,
                                   const std::vector<std::string>& names);

/// Paper §4.4: `Ocean_World = MPH_multi_instance("Ocean")`.
minimpi::Comm MPH_multi_instance(const minimpi::Comm& world,
                                 const RegistrySource& source,
                                 const std::string& prefix);

/// Paper §4.2: `if (PROC_in_component("ocean", comm)) call ocean_xyz(comm)`.
bool PROC_in_component(const std::string& name, minimpi::Comm& comm);

/// Paper §5.1: `comm_new = MPH_comm_join("atmosphere", "ocean")`.
minimpi::Comm MPH_comm_join(const std::string& first,
                            const std::string& second);

/// Paper §5.3 inquiry functions.
int MPH_local_proc_id();
int MPH_global_proc_id();
std::string MPH_comp_name();
int MPH_total_components();
int MPH_exe_low_proc_limit();
int MPH_exe_up_proc_limit();

/// Paper §4.4 argument retrieval (overloads mirror the Fortran interface).
bool MPH_get_argument(const std::string& key, int& value);
bool MPH_get_argument(const std::string& key, long long& value);
bool MPH_get_argument(const std::string& key, double& value);
bool MPH_get_argument(const std::string& key, bool& value);
bool MPH_get_argument(const std::string& key, std::string& value);
bool MPH_get_argument(std::size_t field_num, std::string& field_val);

/// Paper §5.4: `MPH_redirect_output(component_name)` — the component name
/// is implicit in the current handle; `dir` locates the log files
/// (created on demand, default "logs").
void MPH_redirect_output(const std::string& dir = "logs");

/// The redirected output stream of this rank.
std::ostream& MPH_out();

/// MPH_Global_World.
minimpi::Comm MPH_global_world();

}  // namespace mph::compat
