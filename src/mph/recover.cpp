#include "src/mph/recover.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/mph/errors.hpp"
#include "src/util/crc32.hpp"

namespace mph::recover {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'M', 'P', 'H', 'C', 'K', 'P', 'T', '1'};

void append_bytes(std::vector<std::byte>& out,
                  std::span<const std::byte> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

template <class T>
void append_value(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Bounds-checked little reader over the serialized image.
struct Reader {
  std::span<const std::byte> data;
  std::size_t pos = 0;
  std::string_view what;

  void need(std::size_t n) const {
    if (pos + n > data.size()) {
      throw SetupError("checkpoint '" + std::string(what) +
                       "' is truncated (need " + std::to_string(n) +
                       " bytes at offset " + std::to_string(pos) + ", have " +
                       std::to_string(data.size() - pos) + ")");
    }
  }
  template <class T>
  T read() {
    need(sizeof(T));
    T value;
    std::memcpy(&value, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
  std::span<const std::byte> read_span(std::size_t n) {
    need(n);
    const std::span<const std::byte> result = data.subspan(pos, n);
    pos += n;
    return result;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

void Checkpoint::put_doubles(std::string_view key,
                             std::span<const double> values) {
  put_bytes(key, std::as_bytes(values));
}

void Checkpoint::put_u64s(std::string_view key,
                          std::span<const std::uint64_t> values) {
  put_bytes(key, std::as_bytes(values));
}

void Checkpoint::put_bytes(std::string_view key,
                           std::span<const std::byte> bytes) {
  entries_[std::string(key)].assign(bytes.begin(), bytes.end());
}

void Checkpoint::put_scalar(std::string_view key, double value) {
  put_doubles(key, std::span<const double>(&value, 1));
}

void Checkpoint::put_flag(std::string_view key, bool value) {
  const std::uint64_t v = value ? 1 : 0;
  put_u64s(key, std::span<const std::uint64_t>(&v, 1));
}

namespace {

const std::vector<std::byte>& find_entry(
    const std::map<std::string, std::vector<std::byte>, std::less<>>& entries,
    std::string_view key) {
  const auto it = entries.find(key);
  if (it == entries.end()) {
    throw SetupError("checkpoint has no entry '" + std::string(key) + "'");
  }
  return it->second;
}

template <class T>
std::vector<T> entry_as(
    const std::map<std::string, std::vector<std::byte>, std::less<>>& entries,
    std::string_view key) {
  const std::vector<std::byte>& raw = find_entry(entries, key);
  if (raw.size() % sizeof(T) != 0) {
    throw SetupError("checkpoint entry '" + std::string(key) + "' holds " +
                     std::to_string(raw.size()) +
                     " bytes, not a multiple of the element size " +
                     std::to_string(sizeof(T)));
  }
  std::vector<T> values(raw.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

}  // namespace

std::vector<double> Checkpoint::doubles(std::string_view key) const {
  return entry_as<double>(entries_, key);
}

std::vector<std::uint64_t> Checkpoint::u64s(std::string_view key) const {
  return entry_as<std::uint64_t>(entries_, key);
}

std::vector<std::byte> Checkpoint::bytes(std::string_view key) const {
  return find_entry(entries_, key);
}

double Checkpoint::scalar(std::string_view key) const {
  const std::vector<double> values = doubles(key);
  if (values.size() != 1) {
    throw SetupError("checkpoint entry '" + std::string(key) + "' holds " +
                     std::to_string(values.size()) + " values, expected 1");
  }
  return values.front();
}

bool Checkpoint::flag(std::string_view key) const {
  const std::vector<std::uint64_t> values = u64s(key);
  if (values.size() != 1) {
    throw SetupError("checkpoint entry '" + std::string(key) + "' holds " +
                     std::to_string(values.size()) + " values, expected 1");
  }
  return values.front() != 0;
}

bool Checkpoint::has(std::string_view key) const noexcept {
  return entries_.contains(key);
}

std::vector<std::byte> Checkpoint::to_bytes() const {
  std::vector<std::byte> out;
  append_bytes(out, std::as_bytes(std::span<const char>(kMagic)));
  append_value(out, kFormatVersion);
  append_value(out, step_);
  append_value(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [key, payload] : entries_) {
    append_value(out, static_cast<std::uint32_t>(key.size()));
    append_bytes(out, std::as_bytes(std::span<const char>(key)));
    append_value(out, static_cast<std::uint64_t>(payload.size()));
    append_bytes(out, payload);
  }
  append_value(out, util::crc32(out));
  return out;
}

Checkpoint Checkpoint::from_bytes(std::span<const std::byte> data,
                                  std::string_view what) {
  Reader in{data, 0, what};
  const std::span<const std::byte> magic = in.read_span(sizeof(kMagic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SetupError("checkpoint '" + std::string(what) +
                     "' has a bad magic header (not a checkpoint file?)");
  }
  const auto version = in.read<std::uint32_t>();
  if (version != kFormatVersion) {
    throw SetupError("checkpoint '" + std::string(what) +
                     "' has format version " + std::to_string(version) +
                     ", this build reads version " +
                     std::to_string(kFormatVersion));
  }
  Checkpoint ckpt;
  ckpt.step_ = in.read<std::uint64_t>();
  const auto n_entries = in.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    const auto key_len = in.read<std::uint32_t>();
    const std::span<const std::byte> key_bytes = in.read_span(key_len);
    std::string key(reinterpret_cast<const char*>(key_bytes.data()), key_len);
    const auto payload_len = in.read<std::uint64_t>();
    const std::span<const std::byte> payload =
        in.read_span(static_cast<std::size_t>(payload_len));
    ckpt.entries_[std::move(key)].assign(payload.begin(), payload.end());
  }
  // The CRC covers everything before it; any flipped bit fails here.
  const std::size_t body_end = in.pos;
  const auto stored_crc = in.read<std::uint32_t>();
  const std::uint32_t computed_crc = util::crc32(data.subspan(0, body_end));
  if (stored_crc != computed_crc) {
    throw SetupError("checkpoint '" + std::string(what) +
                     "' failed CRC validation (stored " +
                     std::to_string(stored_crc) + ", computed " +
                     std::to_string(computed_crc) + ") — corrupt file");
  }
  if (in.pos != data.size()) {
    throw SetupError("checkpoint '" + std::string(what) + "' has " +
                     std::to_string(data.size() - in.pos) +
                     " trailing bytes after the CRC");
  }
  return ckpt;
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain) {
  if (retain_ < 1) {
    throw SetupError("CheckpointStore: retain must be >= 1, got " +
                     std::to_string(retain_));
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw SetupError("CheckpointStore: cannot create directory '" + dir_ +
                     "': " + ec.message());
  }
}

std::string CheckpointStore::path_of(std::string_view member,
                                     std::uint64_t step) const {
  return (fs::path(dir_) / (std::string(member) + ".step" +
                            std::to_string(step) + ".ckpt"))
      .string();
}

void CheckpointStore::save(std::string_view member,
                           const Checkpoint& ckpt) const {
  const std::vector<std::byte> image = ckpt.to_bytes();
  const std::string final_path = path_of(member, ckpt.step());
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SetupError("CheckpointStore: cannot open '" + tmp_path +
                       "' for writing");
    }
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
      throw SetupError("CheckpointStore: short write to '" + tmp_path + "'");
    }
  }
  // Atomic publish: readers see either the old file set or the complete new
  // file, never a partial write.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    throw SetupError("CheckpointStore: rename '" + tmp_path + "' -> '" +
                     final_path + "' failed: " + ec.message());
  }
  // Prune beyond the retained history (keep the newest `retain` steps).
  const std::vector<std::uint64_t> all = steps(member);
  if (static_cast<int>(all.size()) > retain_) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(retain_) < all.size();
         ++i) {
      fs::remove(path_of(member, all[i]), ec);  // best-effort
    }
  }
}

std::vector<std::uint64_t> CheckpointStore::steps(
    std::string_view member) const {
  const std::string prefix = std::string(member) + ".step";
  const std::string suffix = ".ckpt";
  std::vector<std::uint64_t> result;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    result.push_back(std::stoull(digits));
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::optional<std::uint64_t> CheckpointStore::latest_step(
    std::string_view member) const {
  const std::vector<std::uint64_t> all = steps(member);
  if (all.empty()) return std::nullopt;
  return all.back();
}

std::optional<Checkpoint> CheckpointStore::load_step(std::string_view member,
                                                     std::uint64_t step) const {
  const std::string path = path_of(member, step);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const Checkpoint ckpt =
      Checkpoint::from_bytes(std::as_bytes(std::span<const char>(raw)), path);
  if (ckpt.step() != step) {
    throw SetupError("checkpoint '" + path + "' is stamped step " +
                     std::to_string(ckpt.step()) + " but named step " +
                     std::to_string(step));
  }
  return ckpt;
}

std::optional<Checkpoint> CheckpointStore::load_latest(
    std::string_view member) const {
  const std::optional<std::uint64_t> step = latest_step(member);
  if (!step.has_value()) return std::nullopt;
  return load_step(member, *step);
}

}  // namespace mph::recover
