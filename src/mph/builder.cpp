#include "src/mph/builder.hpp"

#include <sstream>

#include "src/mph/errors.hpp"

namespace mph {

RegistryBuilder::MultiComponent& RegistryBuilder::MultiComponent::component(
    std::string name, int low, int high, std::vector<std::string> args) {
  ComponentEntry entry;
  entry.name = std::move(name);
  entry.low = low;
  entry.high = high;
  entry.args = ArgumentSet::from_tokens(args);
  block_.components.push_back(std::move(entry));
  return *this;
}

RegistryBuilder& RegistryBuilder::MultiComponent::done() {
  block_.kind = BlockKind::multi_component;
  parent_.blocks_.push_back(std::move(block_));
  block_ = ExecutableBlock{};
  return parent_;
}

RegistryBuilder& RegistryBuilder::add_single(std::string name,
                                             std::optional<int> size,
                                             std::vector<std::string> args) {
  ExecutableBlock block;
  block.kind = BlockKind::single;
  ComponentEntry entry;
  entry.name = std::move(name);
  if (size.has_value()) {
    if (*size <= 0) {
      throw MphError("builder: single-component size must be positive");
    }
    entry.low = 0;
    entry.high = *size - 1;
  }
  entry.args = ArgumentSet::from_tokens(args);
  block.components.push_back(std::move(entry));
  blocks_.push_back(std::move(block));
  return *this;
}

RegistryBuilder::MultiComponent RegistryBuilder::multi_component() {
  return MultiComponent(*this);
}

RegistryBuilder& RegistryBuilder::multi_instance(
    const std::string& prefix, int instances, int ranks_each,
    const std::function<std::vector<std::string>(int)>& args_for) {
  if (instances <= 0 || ranks_each <= 0) {
    throw MphError("builder: instances and ranks_each must be positive");
  }
  ExecutableBlock block;
  block.kind = BlockKind::multi_instance;
  for (int i = 0; i < instances; ++i) {
    ComponentEntry entry;
    entry.name = prefix + std::to_string(i + 1);
    entry.low = i * ranks_each;
    entry.high = entry.low + ranks_each - 1;
    if (args_for) {
      entry.args = ArgumentSet::from_tokens(args_for(i));
    }
    block.components.push_back(std::move(entry));
  }
  blocks_.push_back(std::move(block));
  return *this;
}

std::string RegistryBuilder::to_text() const {
  // Serialize through a throw-away Registry-shaped writer: reuse the model
  // serializer by round-tripping the blocks.
  std::ostringstream out;
  out << "BEGIN\n";
  for (const ExecutableBlock& block : blocks_) {
    if (block.kind == BlockKind::multi_component) {
      out << "Multi_Component_Begin\n";
    } else if (block.kind == BlockKind::multi_instance) {
      out << "Multi_Instance_Begin\n";
    }
    for (const ComponentEntry& c : block.components) {
      out << c.name;
      if (c.has_range()) out << ' ' << c.low << ' ' << c.high;
      for (const std::string& token : c.args.to_tokens()) out << ' ' << token;
      out << '\n';
    }
    if (block.kind == BlockKind::multi_component) {
      out << "Multi_Component_End\n";
    } else if (block.kind == BlockKind::multi_instance) {
      out << "Multi_Instance_End\n";
    }
  }
  out << "END\n";
  return out.str();
}

Registry RegistryBuilder::build() const {
  // Parsing the serialized text applies every parser validation rule, so
  // programmatic and hand-written registries are held to one standard.
  return Registry::parse(to_text());
}

}  // namespace mph
