// mph.hpp — the MPH public interface: Multiple Program-Component
// Handshaking for distributed-memory architectures (Ding & He, IPPS 2004).
//
// An Mph object is a rank's view of the established multi-component
// environment, created by one of two collective entry points:
//
//   // SCME / MCME / MCSE (paper §4.1-§4.3): declare this executable's
//   // ordered component name-tags.
//   mph::Mph h = mph::Mph::components_setup(world, source, {"atmosphere"});
//   mph::Mph h = mph::Mph::components_setup(world, source,
//                                           {"ocean", "ice"});
//
//   // MIME ensembles (paper §4.4): declare the instance-name prefix.
//   mph::Mph h = mph::Mph::multi_instance(world, source, "Ocean");
//
// where `source` names the registration file (read on world rank 0 and
// broadcast, exactly as §6 describes), carries its text directly, or wraps
// an already-parsed Registry.
//
// The handle then answers every MPH query of §4-§5: per-component
// communicators, PROC_in_component, MPH_comm_join, name-addressed
// point-to-point, inquiry functions, instance arguments, and stdout
// redirection.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/minimpi/topology.hpp"
#include "src/mph/arguments.hpp"
#include "src/mph/directory.hpp"
#include "src/mph/errors.hpp"
#include "src/mph/handshake.hpp"
#include "src/mph/redirect.hpp"
#include "src/mph/registry.hpp"
#include "src/mph/version.hpp"

namespace mph {

/// Where the registration file comes from.  With `path` or `text`, only
/// world rank 0's copy is authoritative: it is parsed there and broadcast,
/// matching the paper's §6 startup ("read by the root processor and
/// broadcast to all processors").  With `registry`, every rank must pass an
/// identical pre-parsed model (useful for programmatic configuration).
class RegistrySource {
 public:
  static RegistrySource from_path(std::string path);
  static RegistrySource from_text(std::string text);
  static RegistrySource from_registry(Registry registry);

  /// Resolve to a Registry every rank agrees on.  Collective over `world`.
  [[nodiscard]] Registry resolve(const minimpi::Comm& world) const;

 private:
  enum class Kind { path, text, registry };
  Kind kind_ = Kind::text;
  std::string payload_;
  std::optional<Registry> registry_;
};

class Mph {
 public:
  /// Collective setup for component-declaring executables (modes SCSE,
  /// SCME, MCSE, MCME).  `names` is this executable's ordered component
  /// name list — a single tag for a single-component executable.
  [[nodiscard]] static Mph components_setup(const minimpi::Comm& world,
                                            const RegistrySource& source,
                                            std::vector<std::string> names,
                                            HandshakeOptions options = {});

  /// Collective setup for a multi-instance (ensemble) executable: all
  /// instance names in the matched Multi_Instance block share `prefix`.
  [[nodiscard]] static Mph multi_instance(const minimpi::Comm& world,
                                          const RegistrySource& source,
                                          std::string prefix,
                                          HandshakeOptions options = {});

  /// Rejoin setup for a RESPAWNED ensemble member (ExecEnv::incarnation >
  /// 0 under JobOptions::respawn): rebuilds the directory from the layout
  /// the original handshake published on the job blackboard, re-registers
  /// the member's failure domain, and creates the member communicator —
  /// collective over the member's own (respawned) ranks only, so surviving
  /// components are never involved.  See rejoin_handshake() for the one
  /// degradation (exec_comm is the member communicator).
  [[nodiscard]] static Mph rejoin_instance(const minimpi::Comm& world,
                                           std::string prefix,
                                           HandshakeOptions options = {});

  // ---- communicators ------------------------------------------------------

  /// MPH_Global_World: the communicator spanning the whole application.
  [[nodiscard]] const minimpi::Comm& world() const noexcept { return result_.world; }

  /// Communicator of this rank's executable.
  [[nodiscard]] const minimpi::Comm& exec_comm() const noexcept {
    return result_.exec_comm;
  }

  /// Communicator of this rank's (primary) component — the value
  /// MPH_components_setup returns in the paper's examples.
  [[nodiscard]] const minimpi::Comm& comp_comm() const;

  /// Communicator of a named component on this rank; throws LookupError if
  /// this rank is not part of it.
  [[nodiscard]] const minimpi::Comm& comp_comm(std::string_view name) const;

  /// Paper §4.2 `PROC_in_component(name, comm)`: true when this rank
  /// belongs to `name`; fills `out` with the component communicator.
  bool proc_in_component(std::string_view name,
                         minimpi::Comm* out = nullptr) const;

  /// MPH_comm_join (paper §5.1): joint communicator over two components,
  /// with `first`'s processes ranked 0..|first|-1, then `second`'s.
  /// Collective over the union of both components' ranks only.
  [[nodiscard]] minimpi::Comm comm_join(std::string_view first,
                                        std::string_view second) const;

  // ---- name-addressed point-to-point (paper §5.2) --------------------------

  /// World rank of (component, local id).
  [[nodiscard]] minimpi::rank_t global_rank_of(std::string_view component,
                                               minimpi::rank_t local) const {
    return result_.directory.global_rank(component, local);
  }

  template <minimpi::Transferable T>
  void send(std::span<const T> values, std::string_view component,
            minimpi::rank_t local, minimpi::tag_t tag) const {
    world().send(values, global_rank_of(component, local), tag);
  }

  template <minimpi::Transferable T>
  void send(const T& value, std::string_view component, minimpi::rank_t local,
            minimpi::tag_t tag) const {
    send(std::span<const T>(&value, 1), component, local, tag);
  }

  template <minimpi::Transferable T>
  minimpi::Status recv(std::span<T> values, std::string_view component,
                       minimpi::rank_t local, minimpi::tag_t tag) const {
    return world().recv(values, global_rank_of(component, local), tag);
  }

  template <minimpi::Transferable T>
  minimpi::Status recv(T& value, std::string_view component,
                       minimpi::rank_t local, minimpi::tag_t tag) const {
    return recv(std::span<T>(&value, 1), component, local, tag);
  }

  // ---- inquiry (paper §5.3) -------------------------------------------------

  /// MPH_local_proc_id: rank within my (primary) component.
  [[nodiscard]] int local_proc_id() const { return comp_comm().rank(); }
  /// MPH_global_proc_id: rank within MPH_Global_World.
  [[nodiscard]] int global_proc_id() const { return world().rank(); }
  /// MPH_comp_name: my (primary) component's name-tag; for instances this
  /// is the expanded name (e.g. "Ocean2"), not the prefix.
  [[nodiscard]] const std::string& comp_name() const;
  /// MPH_comp_id: my (primary) component's id.
  [[nodiscard]] int comp_id() const;
  /// MPH_total_components across the application.
  [[nodiscard]] int total_components() const noexcept {
    return result_.directory.total_components();
  }
  /// Number of executables in the application.
  [[nodiscard]] int num_executables() const noexcept {
    return result_.directory.num_executables();
  }
  /// MPH_exe_low_proc_limit / MPH_exe_up_proc_limit: world-rank bounds of
  /// my executable.
  [[nodiscard]] minimpi::rank_t exe_low_proc_limit() const;
  [[nodiscard]] minimpi::rank_t exe_up_proc_limit() const;
  /// Index of my executable.
  [[nodiscard]] int exec_index() const noexcept { return result_.exec_index; }
  /// All components on this rank (several under §4.2 overlap).
  [[nodiscard]] std::vector<std::string> my_components() const;
  /// The global component table.
  [[nodiscard]] const Directory& directory() const noexcept {
    return result_.directory;
  }
  /// The handshake options this handle was built with (liveness policy,
  /// instance isolation, ...).
  [[nodiscard]] const HandshakeOptions& options() const noexcept {
    return result_.options;
  }

  // ---- liveness and failure containment -------------------------------------

  /// MPH_ping: true when no rank of `component` has failed.  Under MIME
  /// isolation (HandshakeOptions::isolate_instances) a dead ensemble member
  /// answers false while the rest of the job keeps running; the observation
  /// is cached in the directory (failed_components()) and cleared again
  /// when a healed component answers.  With LivenessOptions::attempts > 1 a
  /// dead peer is re-probed with backoff before reporting false, riding out
  /// the death-to-respawn window of a supervised job.
  bool ping(std::string_view component) const;

  /// Block until ping(component) holds, probing per the handshake's
  /// LivenessOptions (attempts / backoff / backoff_factor).  Throws
  /// PeerTimeoutError — naming the peer, the attempts made and the elapsed
  /// wait — when the budget runs out with the component still dead.
  void await_alive(std::string_view component) const;

  /// Structured failure of `component` (the root-cause rank, kill-point /
  /// operation, and exception text), when one is known from its failure
  /// domain or a job-wide abort.  nullopt while alive — and for collateral
  /// deaths whose root cause lies in another component.
  [[nodiscard]] std::optional<minimpi::AbortInfo> failure_of(
      std::string_view component) const;

  /// Throw ComponentFailedError unless ping(component) holds.
  void require_alive(std::string_view component) const;

  /// Ping every component; names of the dead ones, in component-id order.
  [[nodiscard]] std::vector<std::string> failed_components() const;

  /// Graceful teardown accounting for one rank.
  struct FinalizeReport {
    std::size_t drained_envelopes = 0;   ///< sent to me but never received
    std::size_t cancelled_requests = 0;  ///< my posted receives never matched
    [[nodiscard]] bool clean() const noexcept {
      return drained_envelopes == 0 && cancelled_requests == 0;
    }
  };

  /// MPH_finalize for this rank: flush redirected output, then drain this
  /// rank's mailbox, reporting every leaked envelope (messages addressed to
  /// this rank that it never received) and cancelled posted receive.  A
  /// clean() report proves this rank ended with no communication debt.
  /// Call once, as the last MPH operation of the rank.
  ///
  /// With mpicheck's leak audit enabled (JobOptions::check.leaks or
  /// MINIMPI_CHECK=leaks), the drain is folded into the job's CheckReport,
  /// the per-rank audit goes to the diagnostics channel, and a rank that
  /// finished with communication debt throws minimpi::LeakError.
  FinalizeReport finalize();

  // ---- instance arguments (paper §4.4) --------------------------------------

  /// Argument set of my (primary) component's registry line.
  [[nodiscard]] const ArgumentSet& arguments() const;

  /// MPH_get_argument("alpha", alpha): typed retrieval from my component's
  /// trailing registry-line tokens.  With several overlapping components on
  /// this rank, each component's line is searched in block order.
  template <class T>
  bool get_argument(std::string_view key, T& out) const {
    for (const int id : result_.my_component_ids) {
      if (result_.directory.component(id).args.get(key, out)) return true;
    }
    return false;
  }

  /// MPH_get_argument(field_num=n, field_val=out): positional field.
  bool get_argument_field(std::size_t field_num, std::string& out) const {
    for (const int id : result_.my_component_ids) {
      if (result_.directory.component(id).args.field(field_num, out)) {
        return true;
      }
    }
    return false;
  }

  // ---- SMP-node awareness (paper §9 further work (a)) ------------------------

  /// Node hosting this rank under `topology`.
  [[nodiscard]] int node_id(const minimpi::Topology& topology) const {
    return topology.node_of(global_proc_id());
  }

  /// Node-local slice of my (primary) component: the ranks of my component
  /// that share my SMP node.  Collective over the component communicator.
  [[nodiscard]] minimpi::Comm node_comm(
      const minimpi::Topology& topology) const {
    return minimpi::split_by_node(comp_comm(), topology);
  }

  // ---- dynamic reallocation (paper §9 further work (b)) -----------------------

  /// Re-run the handshake against a NEW registration file on the same
  /// world, with the same declaration this handle was created with.
  /// Within-executable processor allocation (component ranges of
  /// multi-component blocks, instance carving of multi-instance blocks)
  /// may change freely; executable extents are fixed by the launcher.
  /// Collective over the world.  The old handle stays fully usable — its
  /// communicators are independent contexts.
  [[nodiscard]] Mph remap(const RegistrySource& new_source,
                          HandshakeOptions options = {}) const;

  // ---- output redirection (paper §5.4) ---------------------------------------

  /// MPH_redirect_output: route this rank's component output.  Local proc 0
  /// of each component writes to `<dir>/<comp_name>.log`; every other rank
  /// appends to `<dir>/mph_combined.log`.  The directory (created on
  /// demand) defaults to "logs" so log files stay out of the working tree.
  void redirect_output(const std::string& dir = "logs");

  /// The redirected stream (throws unless redirect_output was called).
  [[nodiscard]] std::ostream& out();

  /// Flush this rank's channel (partial lines included).
  void flush_output();

 private:
  explicit Mph(HandshakeResult result) : result_(std::move(result)) {}

  /// One liveness check of `record`, updating the directory's failure
  /// cache in both directions (mark on dead, clear on alive).
  bool probe_alive(const ComponentRecord& record) const;

  HandshakeResult result_;
  OutputChannel channel_;
  bool redirected_ = false;
};

}  // namespace mph
