#include "src/mph/compat.hpp"

#include <optional>

namespace mph::compat {

namespace {
thread_local std::optional<Mph> t_current;
}  // namespace

Mph& current() {
  if (!t_current.has_value()) {
    throw MphError(
        "no MPH setup has run on this rank (call MPH_components_setup or "
        "MPH_multi_instance first)");
  }
  return *t_current;
}

bool has_current() noexcept { return t_current.has_value(); }

void set_current(Mph handle) { t_current.emplace(std::move(handle)); }

void clear_current() noexcept { t_current.reset(); }

minimpi::Comm MPH_components_setup(const minimpi::Comm& world,
                                   const RegistrySource& source,
                                   const std::vector<std::string>& names) {
  set_current(Mph::components_setup(world, source, names));
  // Paper §4.1/§4.3: a single-component executable gets its component
  // communicator ("atmosphere_World"); a multi-component executable gets
  // its executable communicator ("mpi_exec_world") — the two coincide for
  // single-component executables.
  return current().exec_comm();
}

minimpi::Comm MPH_multi_instance(const minimpi::Comm& world,
                                 const RegistrySource& source,
                                 const std::string& prefix) {
  set_current(Mph::multi_instance(world, source, prefix));
  return current().comp_comm();
}

bool PROC_in_component(const std::string& name, minimpi::Comm& comm) {
  return current().proc_in_component(name, &comm);
}

minimpi::Comm MPH_comm_join(const std::string& first,
                            const std::string& second) {
  return current().comm_join(first, second);
}

int MPH_local_proc_id() { return current().local_proc_id(); }
int MPH_global_proc_id() { return current().global_proc_id(); }
std::string MPH_comp_name() { return current().comp_name(); }
int MPH_total_components() { return current().total_components(); }
int MPH_exe_low_proc_limit() { return current().exe_low_proc_limit(); }
int MPH_exe_up_proc_limit() { return current().exe_up_proc_limit(); }

bool MPH_get_argument(const std::string& key, int& value) {
  return current().get_argument(key, value);
}
bool MPH_get_argument(const std::string& key, long long& value) {
  return current().get_argument(key, value);
}
bool MPH_get_argument(const std::string& key, double& value) {
  return current().get_argument(key, value);
}
bool MPH_get_argument(const std::string& key, bool& value) {
  return current().get_argument(key, value);
}
bool MPH_get_argument(const std::string& key, std::string& value) {
  return current().get_argument(key, value);
}
bool MPH_get_argument(std::size_t field_num, std::string& field_val) {
  return current().get_argument_field(field_num, field_val);
}

void MPH_redirect_output(const std::string& dir) {
  current().redirect_output(dir);
}

std::ostream& MPH_out() { return current().out(); }

minimpi::Comm MPH_global_world() { return current().world(); }

}  // namespace mph::compat
