// handshake.hpp — the component registration / handshaking algorithm
// (paper §6 "Algorithms and Implementation for MPH").
//
// Input: each rank's world communicator plus the *local declaration* its
// executable made (the names passed to MPH_components_setup, or the prefix
// passed to MPH_multi_instance) and the registration file.  No rank knows
// which executables occupy other processors — discovering that is the
// point.
//
// Steps, following the paper:
//   1. every rank broadcasts/receives the registration file (done by the
//      caller; see Mph::components_setup) and allgathers its executable's
//      declaration signature;
//   2. maximal runs of consecutive ranks with the same signature are the
//      executables (launchers assign contiguous, non-overlapping ranks);
//   3. each run is matched to exactly one registry block by component
//      names (or instance-name prefix), and sizes are cross-validated;
//   4. component communicators are created:
//        §6.1 — if every executable is single-component, ONE
//               MPI_Comm_split of world with color = component id;
//        §6.2 — otherwise split world by executable, then inside each
//               multi-component executable either one split (components
//               disjoint on processors) or one split per component
//               (components overlap).
#pragma once

#include <string>
#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/mph/directory.hpp"
#include "src/mph/registry.hpp"

namespace mph {

/// What this executable told MPH about itself.
struct LocalDeclaration {
  /// True for MPH_multi_instance (names holds exactly the prefix);
  /// false for MPH_components_setup (names holds the ordered component
  /// name-tags of this executable).
  bool is_instance = false;
  std::vector<std::string> names;
};

struct HandshakeOptions {
  /// Use the paper's §6.1 one-split fast path when every executable is
  /// single-component.  Disabling forces the general §6.2 path (used by the
  /// bench_handshake ablation).
  bool single_split_fast_path = true;

  /// MIME member isolation: register each ensemble instance of a
  /// Multi_Instance block into its own failure domain
  /// (minimpi::Job::join_domain).  A rank failure inside one instance then
  /// aborts only that member — siblings and other components keep running,
  /// and can detect the loss via Mph::ping.  Off by default: without
  /// isolation a failure anywhere aborts the whole job promptly, which is
  /// the friendlier behaviour for applications that never check liveness.
  bool isolate_instances = false;
};

/// Everything a rank learns from the handshake.
struct HandshakeResult {
  Directory directory;
  minimpi::Comm world;      ///< MPH_Global_World
  minimpi::Comm exec_comm;  ///< communicator of this rank's executable
  int exec_index = -1;      ///< index into directory.execs()
  LocalDeclaration declaration;  ///< what this executable declared (for remap)

  /// Components covering this rank, in block order (usually one; several
  /// under §4.2 processor overlap).  `my_component_comms[i]` is the
  /// communicator of `my_component_ids[i]`.
  std::vector<int> my_component_ids;
  std::vector<minimpi::Comm> my_component_comms;
};

/// Run the handshake.  Collective over `world`; throws SetupError when the
/// declarations and the registration file disagree.
[[nodiscard]] HandshakeResult handshake(const minimpi::Comm& world,
                                        const Registry& registry,
                                        const LocalDeclaration& declaration,
                                        const HandshakeOptions& options = {});

/// Signature string identifying a declaration during the allgather
/// (exposed for tests).
[[nodiscard]] std::string declaration_signature(const LocalDeclaration& decl);

}  // namespace mph
