// handshake.hpp — the component registration / handshaking algorithm
// (paper §6 "Algorithms and Implementation for MPH").
//
// Input: each rank's world communicator plus the *local declaration* its
// executable made (the names passed to MPH_components_setup, or the prefix
// passed to MPH_multi_instance) and the registration file.  No rank knows
// which executables occupy other processors — discovering that is the
// point.
//
// Steps, following the paper:
//   1. every rank broadcasts/receives the registration file (done by the
//      caller; see Mph::components_setup) and allgathers its executable's
//      declaration signature;
//   2. maximal runs of consecutive ranks with the same signature are the
//      executables (launchers assign contiguous, non-overlapping ranks);
//   3. each run is matched to exactly one registry block by component
//      names (or instance-name prefix), and sizes are cross-validated;
//   4. component communicators are created:
//        §6.1 — if every executable is single-component, ONE
//               MPI_Comm_split of world with color = component id;
//        §6.2 — otherwise split world by executable, then inside each
//               multi-component executable either one split (components
//               disjoint on processors) or one split per component
//               (components overlap).
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/mph/directory.hpp"
#include "src/mph/registry.hpp"

namespace mph {

/// What this executable told MPH about itself.
struct LocalDeclaration {
  /// True for MPH_multi_instance (names holds exactly the prefix);
  /// false for MPH_components_setup (names holds the ordered component
  /// name-tags of this executable).
  bool is_instance = false;
  std::vector<std::string> names;
};

/// Retry policy for liveness probes (Mph::ping / await_alive).  The
/// defaults keep ping a single instantaneous check; a component that runs
/// under a respawning supervisor (JobOptions::respawn) sets attempts > 1 so
/// a probe rides out the window between a member's death and its heal.
struct LivenessOptions {
  /// Total probe attempts per ping before reporting dead (>= 1).
  int attempts = 1;
  /// Wait before the second attempt; scaled by backoff_factor after each
  /// further failure.  Zero retries immediately.
  std::chrono::milliseconds backoff{0};
  double backoff_factor = 2.0;
};

struct HandshakeOptions {
  /// Use the paper's §6.1 one-split fast path when every executable is
  /// single-component.  Disabling forces the general §6.2 path (used by the
  /// bench_handshake ablation).
  bool single_split_fast_path = true;

  /// MIME member isolation: register each ensemble instance of a
  /// Multi_Instance block into its own failure domain
  /// (minimpi::Job::join_domain).  A rank failure inside one instance then
  /// aborts only that member — siblings and other components keep running,
  /// and can detect the loss via Mph::ping.  Off by default: without
  /// isolation a failure anywhere aborts the whole job promptly, which is
  /// the friendlier behaviour for applications that never check liveness.
  bool isolate_instances = false;

  /// Liveness probe retry policy, consulted by Mph::ping and await_alive.
  LivenessOptions liveness;

  /// Contract-version pin (mph_proto).  When non-empty — conventionally
  /// proto::contract_hash_hex() of the contract text this executable was
  /// built against — the pin rides along in the declaration signature as a
  /// "|contract=<8hex>" suffix.  The handshake fails with SetupError at
  /// registration time when two executables carry *different* non-empty
  /// pins, so mismatched contract versions are caught before the first
  /// message.  Executables without a pin coexist with pinned ones
  /// (gradual adoption), and an empty pin adds zero bytes and zero work.
  std::string contract;
};

/// Everything a rank learns from the handshake.
struct HandshakeResult {
  Directory directory;
  minimpi::Comm world;      ///< MPH_Global_World
  minimpi::Comm exec_comm;  ///< communicator of this rank's executable
  int exec_index = -1;      ///< index into directory.execs()
  LocalDeclaration declaration;  ///< what this executable declared (for remap)

  /// Components covering this rank, in block order (usually one; several
  /// under §4.2 processor overlap).  `my_component_comms[i]` is the
  /// communicator of `my_component_ids[i]`.
  std::vector<int> my_component_ids;
  std::vector<minimpi::Comm> my_component_comms;

  /// The options the handshake ran with, kept so later liveness queries
  /// (Mph::ping retry policy) can consult them.
  HandshakeOptions options;
};

/// Run the handshake.  Collective over `world`; throws SetupError when the
/// declarations and the registration file disagree.
[[nodiscard]] HandshakeResult handshake(const minimpi::Comm& world,
                                        const Registry& registry,
                                        const LocalDeclaration& declaration,
                                        const HandshakeOptions& options = {});

/// Blackboard keys under which world rank 0 publishes the established
/// layout (minimpi::Job::put_shared) during handshake(), for later
/// rejoin_handshake() calls by respawned ranks.
inline constexpr const char* kRegistryKey = "mph.registry";
inline constexpr const char* kSignaturesKey = "mph.signatures";

/// Re-run the handshake for a RESPAWNED ensemble member without involving
/// any surviving rank.  The registry text and per-rank signature vector are
/// read back from the job blackboard (published by the original handshake),
/// the directory is rebuilt with the same pure resolve_layout — so it is
/// identical to every survivor's copy — and the only collective performed
/// is Comm::create_ordered_world over the member's own ranks, which are
/// exactly the ranks being respawned together.
///
/// Degradation vs. the full handshake: exec_comm is the member communicator
/// (not the whole multi-instance executable's), because rebuilding the
/// executable communicator would require a collective with surviving
/// sibling members.  Ensemble members communicate via their instance comm
/// and name-addressed p2p, so this is invisible in practice.
[[nodiscard]] HandshakeResult rejoin_handshake(
    const minimpi::Comm& world, const LocalDeclaration& declaration,
    const HandshakeOptions& options = {});

/// Signature string identifying a declaration during the allgather
/// (exposed for tests).
[[nodiscard]] std::string declaration_signature(const LocalDeclaration& decl);

/// declaration_signature() plus the "|contract=<hex>" suffix when the
/// options carry a contract pin (exposed for tests).
[[nodiscard]] std::string pinned_signature(const LocalDeclaration& decl,
                                           const HandshakeOptions& options);

/// The contract pin embedded in an allgathered signature; empty when the
/// signature is unpinned.
[[nodiscard]] std::string signature_contract_pin(const std::string& sig);

}  // namespace mph
