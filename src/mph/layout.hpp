// layout.hpp — the pure (communication-free) core of the §6 handshake:
// matching executable declarations against the registration file,
// validating processor counts, and building the global Directory.
//
// The same code serves three callers:
//   * handshake() — after allgathering live signatures (the real setup);
//   * plan_layout() — a dry run over a *planned* job description, letting
//     deployment scripts and the `mph_inspect` tool validate a
//     registration file against a command file before burning a batch-queue
//     slot;
//   * property tests — which assert that the in-job handshake and the dry
//     run agree exactly.
#pragma once

#include <string>
#include <vector>

#include "src/mph/directory.hpp"
#include "src/mph/registry.hpp"

namespace mph {

struct LocalDeclaration;  // handshake.hpp

/// Signature string identifying a declaration during the allgather.
[[nodiscard]] std::string declaration_signature(const LocalDeclaration& decl);

/// Parse "C:a,b,c" / "I:prefix" back into a declaration.  A
/// "|contract=<hex>" suffix (the mph_proto contract-version pin) is not
/// part of the declaration and is stripped.
[[nodiscard]] LocalDeclaration parse_signature(const std::string& sig);

/// A maximal run of consecutive world ranks sharing one declaration — one
/// executable, as observed at runtime or as planned.
struct ExecutableRun {
  std::string signature;
  minimpi::rank_t base = 0;
  int size = 0;
};

/// Collapse per-rank signatures into executable runs.
[[nodiscard]] std::vector<ExecutableRun> find_runs(
    const std::vector<std::string>& signatures);

/// Outcome of matching runs against the registration file.
struct LayoutResolution {
  Directory directory;
  /// For each run, the index of the registry block it matched.
  std::vector<int> block_of_run;
};

/// Match every run to exactly one registry block, validate sizes/ranges,
/// and build the Directory (component ids in registration-file order).
/// Throws SetupError on any disagreement — identical on every caller since
/// the inputs are identical.
[[nodiscard]] LayoutResolution resolve_layout(
    const Registry& registry, const std::vector<ExecutableRun>& runs);

/// One executable of a *planned* job (command-file line).
struct PlannedExecutable {
  /// What the executable will declare: component names, or the instance
  /// prefix when `is_instance`.
  std::vector<std::string> names;
  bool is_instance = false;
  int nprocs = 1;
};

/// Dry-run the full matching/validation without launching anything;
/// returns the Directory the real handshake would build for this job.
[[nodiscard]] Directory plan_layout(
    const Registry& registry, const std::vector<PlannedExecutable>& job);

}  // namespace mph
