// directory.hpp — the global component table produced by the handshake.
//
// After MPH setup, every rank holds an identical Directory: for each
// component (in registration-file order, which defines the component ids of
// paper §6) its name, owning executable, inclusive world-rank range, and
// runtime arguments.  The directory answers every §5.2/§5.3 query:
// translating (component-name, local id) to a world rank, processor limits
// of an executable, component counts, and name lookups with helpful
// diagnostics.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/types.hpp"
#include "src/mph/arguments.hpp"
#include "src/mph/registry.hpp"

namespace mph {

/// One registered component, with its placement resolved to world ranks.
struct ComponentRecord {
  std::string name;
  int component_id = -1;   ///< dense id in registration-file order
  int exec_index = -1;     ///< index into Directory::execs()
  BlockKind kind = BlockKind::single;
  minimpi::rank_t global_low = -1;   ///< first world rank (inclusive)
  minimpi::rank_t global_high = -1;  ///< last world rank (inclusive)
  ArgumentSet args;

  [[nodiscard]] int size() const noexcept { return global_high - global_low + 1; }
  [[nodiscard]] bool covers_world_rank(minimpi::rank_t world) const noexcept {
    return world >= global_low && world <= global_high;
  }
};

/// One executable of the running job.
struct ExecRecord {
  int exec_index = -1;
  BlockKind kind = BlockKind::single;
  minimpi::rank_t base = -1;  ///< first world rank
  int size = 0;               ///< number of world ranks
  std::vector<int> component_ids;  ///< components living in this executable

  [[nodiscard]] minimpi::rank_t up_limit() const noexcept {
    return base + size - 1;
  }
};

class Directory {
 public:
  Directory() = default;
  Directory(std::vector<ComponentRecord> components,
            std::vector<ExecRecord> execs);

  [[nodiscard]] int total_components() const noexcept {
    return static_cast<int>(components_.size());
  }
  [[nodiscard]] int num_executables() const noexcept {
    return static_cast<int>(execs_.size());
  }

  [[nodiscard]] const std::vector<ComponentRecord>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] const std::vector<ExecRecord>& execs() const noexcept {
    return execs_;
  }

  /// Component by id (registration-file order).
  [[nodiscard]] const ComponentRecord& component(int component_id) const;

  /// Component by name; throws LookupError naming the candidates.
  [[nodiscard]] const ComponentRecord& component(std::string_view name) const;

  [[nodiscard]] bool has_component(std::string_view name) const noexcept {
    return by_name_.contains(name);
  }

  /// World rank of `local_rank` within component `name` — the §5.2
  /// translation behind "send to Process 3 on ocean".
  [[nodiscard]] minimpi::rank_t global_rank(std::string_view name,
                                            minimpi::rank_t local_rank) const;

  /// Local rank of a world rank within component `name`, or -1.
  [[nodiscard]] minimpi::rank_t local_rank(std::string_view name,
                                           minimpi::rank_t world_rank) const;

  /// Components covering a world rank (more than one under §4.2 overlap).
  [[nodiscard]] std::vector<int> components_covering(
      minimpi::rank_t world_rank) const;

  /// Executable covering a world rank.
  [[nodiscard]] const ExecRecord& exec_of_world_rank(
      minimpi::rank_t world_rank) const;

  /// Names of every component, in component-id order.
  [[nodiscard]] std::vector<std::string> component_names() const;

  // --- runtime failure marks ------------------------------------------------
  // Each rank owns its Directory copy, so marks are a rank-local cache of
  // liveness observations (written by Mph::ping) — no synchronization.

  /// Remember that `component_id` was observed dead.
  void mark_failed(int component_id) const { failed_.insert(component_id); }

  /// Forget a death observation — called by Mph::ping when a previously
  /// dead component answers again (its failure domain was healed by a
  /// respawn).  Without this the cache is sticky and a healed member would
  /// stay in failed_components() forever.
  void clear_failed(int component_id) const { failed_.erase(component_id); }

  [[nodiscard]] bool is_failed(int component_id) const noexcept {
    return failed_.contains(component_id);
  }

  /// Names of every component marked dead, in component-id order.
  [[nodiscard]] std::vector<std::string> failed_components() const {
    std::vector<std::string> names;
    for (const int id : failed_) {
      names.push_back(components_[static_cast<std::size_t>(id)].name);
    }
    return names;
  }

  /// Human-readable configuration table (the banner the Fortran MPH
  /// printed at startup): one line per executable and per component with
  /// kind, world-rank range, and arguments.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<ComponentRecord> components_;
  std::vector<ExecRecord> execs_;
  std::map<std::string, int, std::less<>> by_name_;
  mutable std::set<int> failed_;  ///< rank-local liveness cache (see above)
};

}  // namespace mph
