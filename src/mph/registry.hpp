// registry.hpp — the component registration file ("processors_map.in").
//
// The registration file is MPH's single point of runtime configuration
// (paper §3: "The number of components and executables, names of each
// components, processor allocation are all determined by a component
// registration file").  Grammar, exactly as the paper's examples:
//
//   BEGIN
//   Multi_Component_Begin      ! a multi-component executable
//   atmosphere 0 15
//   land       0 15            ! components may overlap on processors
//   chemistry  16 19
//   Multi_Component_End
//   Multi_Instance_Begin       ! a multi-instance (ensemble) executable
//   Ocean1 0 15  inf1 outf1 alpha=3 debug=on
//   Ocean2 16 31 inf2 outf2 beta=4.5
//   Multi_Instance_End
//   coupler                    ! a single-component executable
//   END
//
// `!` and `#` introduce comments; keywords are case-insensitive; names are
// arbitrary tags (never hardcoded — §3 characteristic (a)).  Processor
// ranges are *executable-relative* and inclusive.  Up to 5 trailing tokens
// per line carry instance arguments (§4.4).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/mph/arguments.hpp"

namespace mph {

/// How an executable block integrates its components (paper §2 modes).
enum class BlockKind {
  single,           ///< single-component executable (SCME line)
  multi_component,  ///< Multi_Component_Begin/End block (MCSE/MCME)
  multi_instance,   ///< Multi_Instance_Begin/End block (MIME ensembles)
};

[[nodiscard]] constexpr const char* block_kind_name(BlockKind kind) noexcept {
  switch (kind) {
    case BlockKind::single: return "single-component";
    case BlockKind::multi_component: return "multi-component";
    case BlockKind::multi_instance: return "multi-instance";
  }
  return "?";
}

/// One component line of the registration file.
struct ComponentEntry {
  std::string name;
  /// Inclusive processor range, relative to the executable's first rank.
  /// Both -1 when the line carries no range (allowed only for
  /// single-component executables, whose extent comes from the launcher).
  int low = -1;
  int high = -1;
  ArgumentSet args;
  int line = 0;  ///< 1-based source line, for diagnostics

  [[nodiscard]] bool has_range() const noexcept { return low >= 0; }
  [[nodiscard]] int range_size() const noexcept {
    return has_range() ? high - low + 1 : 0;
  }
};

/// One executable of the application: a single-component line or a
/// Multi_Component/Multi_Instance block.
struct ExecutableBlock {
  BlockKind kind = BlockKind::single;
  std::vector<ComponentEntry> components;
  int line = 0;

  /// Number of processors this block requires; 0 when unconstrained
  /// (a single-component executable without an explicit range).
  [[nodiscard]] int required_size() const noexcept;

  /// Ordered component names.
  [[nodiscard]] std::vector<std::string> names() const;
};

/// Parsed, validated registration file.
class Registry {
 public:
  /// Parse registry text.  Throws RegistryError with a line number on any
  /// violation (missing BEGIN/END, bad range, duplicate names, nested or
  /// unterminated blocks, >10 components per executable, >5 argument
  /// tokens per line, ...).
  static Registry parse(std::string_view text);

  /// Read and parse a file.  Throws RegistryError when unreadable.
  static Registry load(const std::string& path);

  [[nodiscard]] const std::vector<ExecutableBlock>& blocks() const noexcept {
    return blocks_;
  }

  [[nodiscard]] int num_executables() const noexcept {
    return static_cast<int>(blocks_.size());
  }

  /// Total component count across every block (instances count singly).
  [[nodiscard]] int total_components() const noexcept;

  [[nodiscard]] bool has_component(std::string_view name) const noexcept;

  /// True when every executable is single-component — enables the paper's
  /// §6.1 one-split fast path.
  [[nodiscard]] bool all_single_component() const noexcept;

  /// Serialize back to registry-file text (stable round-trip: parse ∘
  /// to_text ∘ parse is the identity on the model).
  [[nodiscard]] std::string to_text() const;

  /// Paper limit: "Each executable could contain up to 10 components."
  static constexpr int kMaxComponentsPerExecutable = 10;
  /// Paper limit: "Up to 5 character strings can be appended to each line."
  static constexpr int kMaxArgumentTokens = 5;

 private:
  std::vector<ExecutableBlock> blocks_;
};

}  // namespace mph
