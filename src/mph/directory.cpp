#include "src/mph/directory.hpp"

#include "src/mph/errors.hpp"
#include "src/util/strings.hpp"

namespace mph {

Directory::Directory(std::vector<ComponentRecord> components,
                     std::vector<ExecRecord> execs)
    : components_(std::move(components)), execs_(std::move(execs)) {
  for (const ComponentRecord& c : components_) {
    by_name_.emplace(c.name, c.component_id);
  }
}

const ComponentRecord& Directory::component(int component_id) const {
  if (component_id < 0 ||
      component_id >= static_cast<int>(components_.size())) {
    throw LookupError("component id " + std::to_string(component_id) +
                      " outside [0, " + std::to_string(components_.size()) +
                      ")");
  }
  return components_[static_cast<std::size_t>(component_id)];
}

const ComponentRecord& Directory::component(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::vector<std::string> names = component_names();
    throw LookupError("unknown component '" + std::string(name) +
                      "'; registered components: " +
                      util::join(names, ", "));
  }
  return components_[static_cast<std::size_t>(it->second)];
}

minimpi::rank_t Directory::global_rank(std::string_view name,
                                       minimpi::rank_t local_rank) const {
  const ComponentRecord& record = component(name);
  if (local_rank < 0 || local_rank >= record.size()) {
    throw LookupError("local rank " + std::to_string(local_rank) +
                      " outside component '" + record.name + "' of size " +
                      std::to_string(record.size()));
  }
  return record.global_low + local_rank;
}

minimpi::rank_t Directory::local_rank(std::string_view name,
                                      minimpi::rank_t world_rank) const {
  const ComponentRecord& record = component(name);
  if (!record.covers_world_rank(world_rank)) return -1;
  return world_rank - record.global_low;
}

std::vector<int> Directory::components_covering(
    minimpi::rank_t world_rank) const {
  std::vector<int> covering;
  for (const ComponentRecord& c : components_) {
    if (c.covers_world_rank(world_rank)) covering.push_back(c.component_id);
  }
  return covering;
}

const ExecRecord& Directory::exec_of_world_rank(
    minimpi::rank_t world_rank) const {
  for (const ExecRecord& e : execs_) {
    if (world_rank >= e.base && world_rank <= e.up_limit()) return e;
  }
  throw LookupError("world rank " + std::to_string(world_rank) +
                    " is not covered by any executable");
}

std::vector<std::string> Directory::component_names() const {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const ComponentRecord& c : components_) names.push_back(c.name);
  return names;
}

std::string Directory::describe() const {
  std::string out = "MPH configuration: " +
                    std::to_string(num_executables()) + " executable(s), " +
                    std::to_string(total_components()) + " component(s)\n";
  for (const ExecRecord& e : execs_) {
    out += "  executable " + std::to_string(e.exec_index) + " [" +
           block_kind_name(e.kind) + "]: world ranks " +
           std::to_string(e.base) + ".." + std::to_string(e.up_limit()) +
           "\n";
    for (const int id : e.component_ids) {
      const ComponentRecord& c = components_[static_cast<std::size_t>(id)];
      out += "    component " + std::to_string(c.component_id) + " '" +
             c.name + "': world ranks " + std::to_string(c.global_low) +
             ".." + std::to_string(c.global_high);
      const std::vector<std::string> tokens = c.args.to_tokens();
      if (!tokens.empty()) {
        out += "  (";
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          if (i > 0) out += ' ';
          out += tokens[i];
        }
        out += ')';
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mph
