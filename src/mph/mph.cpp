#include "src/mph/mph.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/minimpi/collectives.hpp"
#include "src/util/diagnostics.hpp"

namespace mph {

// ---------------------------------------------------------------------------
// RegistrySource
// ---------------------------------------------------------------------------

RegistrySource RegistrySource::from_path(std::string path) {
  RegistrySource source;
  source.kind_ = Kind::path;
  source.payload_ = std::move(path);
  return source;
}

RegistrySource RegistrySource::from_text(std::string text) {
  RegistrySource source;
  source.kind_ = Kind::text;
  source.payload_ = std::move(text);
  return source;
}

RegistrySource RegistrySource::from_registry(Registry registry) {
  RegistrySource source;
  source.kind_ = Kind::registry;
  source.registry_ = std::move(registry);
  return source;
}

Registry RegistrySource::resolve(const minimpi::Comm& world) const {
  if (kind_ == Kind::registry) {
    // Pre-parsed model: assumed identical on every rank (programmatic use).
    return *registry_;
  }
  // Paper §6: "the information in the registration file is read by the root
  // processor (global Processor ID = 0) and broadcast to all processors."
  const minimpi::TraceSpan span(world.job().tracer(),
                                world.global_of(world.rank()),
                                minimpi::TraceOp::phase, "registry_resolve",
                                minimpi::kPhaseRegistry);
  std::string text;
  if (world.rank() == 0) {
    if (kind_ == Kind::path) {
      std::ifstream in(payload_);
      if (!in) {
        throw RegistryError(0, "cannot open registration file '" + payload_ +
                                   "' on world rank 0");
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    } else {
      text = payload_;
    }
  }
  minimpi::bcast_string(world, text, 0);
  return Registry::parse(text);
}

// ---------------------------------------------------------------------------
// Mph
// ---------------------------------------------------------------------------

Mph Mph::components_setup(const minimpi::Comm& world,
                          const RegistrySource& source,
                          std::vector<std::string> names,
                          HandshakeOptions options) {
  const Registry registry = source.resolve(world);
  LocalDeclaration decl;
  decl.is_instance = false;
  decl.names = std::move(names);
  return Mph(handshake(world, registry, decl, options));
}

Mph Mph::multi_instance(const minimpi::Comm& world,
                        const RegistrySource& source, std::string prefix,
                        HandshakeOptions options) {
  const Registry registry = source.resolve(world);
  LocalDeclaration decl;
  decl.is_instance = true;
  decl.names = {std::move(prefix)};
  return Mph(handshake(world, registry, decl, options));
}

Mph Mph::rejoin_instance(const minimpi::Comm& world, std::string prefix,
                         HandshakeOptions options) {
  LocalDeclaration decl;
  decl.is_instance = true;
  decl.names = {std::move(prefix)};
  return Mph(rejoin_handshake(world, decl, options));
}

const minimpi::Comm& Mph::comp_comm() const {
  if (result_.my_component_comms.empty()) {
    throw LookupError("this rank belongs to no component");
  }
  return result_.my_component_comms.front();
}

const minimpi::Comm& Mph::comp_comm(std::string_view name) const {
  const ComponentRecord& record = result_.directory.component(name);
  for (std::size_t i = 0; i < result_.my_component_ids.size(); ++i) {
    if (result_.my_component_ids[i] == record.component_id) {
      return result_.my_component_comms[i];
    }
  }
  throw LookupError("rank " + std::to_string(world().rank()) +
                    " is not part of component '" + std::string(name) + "'");
}

bool Mph::proc_in_component(std::string_view name, minimpi::Comm* out) const {
  const ComponentRecord& record = result_.directory.component(name);
  for (std::size_t i = 0; i < result_.my_component_ids.size(); ++i) {
    if (result_.my_component_ids[i] == record.component_id) {
      if (out != nullptr) *out = result_.my_component_comms[i];
      return true;
    }
  }
  return false;
}

minimpi::Comm Mph::comm_join(std::string_view first,
                             std::string_view second) const {
  const ComponentRecord& a = result_.directory.component(first);
  const ComponentRecord& b = result_.directory.component(second);
  if (a.component_id == b.component_id) {
    throw SetupError("comm_join of component '" + a.name + "' with itself");
  }
  // Overlapping components share processors; a merged communicator would
  // need a rank to appear twice.  Executables never overlap (paper §2), so
  // this only arises for overlapping components of one executable.
  if (a.global_low <= b.global_high && b.global_low <= a.global_high) {
    throw SetupError("comm_join('" + a.name + "', '" + b.name +
                     "'): components overlap on processors " +
                     std::to_string(std::max(a.global_low, b.global_low)) +
                     ".." +
                     std::to_string(std::min(a.global_high, b.global_high)));
  }
  // Paper §5.1 ordering: first's processes rank 0..|A|-1, then second's.
  std::vector<minimpi::rank_t> members;
  members.reserve(static_cast<std::size_t>(a.size() + b.size()));
  for (minimpi::rank_t r = a.global_low; r <= a.global_high; ++r) {
    members.push_back(r);
  }
  for (minimpi::rank_t r = b.global_low; r <= b.global_high; ++r) {
    members.push_back(r);
  }
  const minimpi::rank_t me = world().rank();
  if (!a.covers_world_rank(me) && !b.covers_world_rank(me)) {
    throw SetupError("comm_join('" + a.name + "', '" + b.name +
                     "') called from rank " + std::to_string(me) +
                     ", which belongs to neither component");
  }
  const minimpi::TraceSpan span(world().job().tracer(),
                                world().global_of(me),
                                minimpi::TraceOp::phase, "comm_join",
                                minimpi::kPhaseCommJoin);
  return world().create_ordered_world(std::span<const minimpi::rank_t>(members));
}

const std::string& Mph::comp_name() const {
  return result_.directory.component(comp_id()).name;
}

int Mph::comp_id() const {
  if (result_.my_component_ids.empty()) {
    throw LookupError("this rank belongs to no component");
  }
  return result_.my_component_ids.front();
}

minimpi::rank_t Mph::exe_low_proc_limit() const {
  return result_.directory.execs()[static_cast<std::size_t>(result_.exec_index)]
      .base;
}

minimpi::rank_t Mph::exe_up_proc_limit() const {
  return result_.directory.execs()[static_cast<std::size_t>(result_.exec_index)]
      .up_limit();
}

std::vector<std::string> Mph::my_components() const {
  std::vector<std::string> names;
  names.reserve(result_.my_component_ids.size());
  for (const int id : result_.my_component_ids) {
    names.push_back(result_.directory.component(id).name);
  }
  return names;
}

bool Mph::probe_alive(const ComponentRecord& record) const {
  minimpi::Job& job = world().job();
  const bool dead =
      job.domain_aborted(record.component_id) ||
      job.any_rank_failed(record.global_low, record.global_high);
  if (dead) {
    result_.directory.mark_failed(record.component_id);
  } else {
    // A component that answers again was healed (respawned) — un-stick the
    // rank-local death cache so failed_components() reflects reality.
    result_.directory.clear_failed(record.component_id);
  }
  return !dead;
}

bool Mph::ping(std::string_view component) const {
  const ComponentRecord& record = result_.directory.component(component);
  const LivenessOptions& liveness = result_.options.liveness;
  const int attempts = std::max(1, liveness.attempts);
  auto backoff = liveness.backoff;
  for (int attempt = 1;; ++attempt) {
    if (probe_alive(record)) return true;
    if (attempt >= attempts) return false;
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::chrono::milliseconds(static_cast<long long>(
          static_cast<double>(backoff.count()) * liveness.backoff_factor));
    }
  }
}

void Mph::await_alive(std::string_view component) const {
  const ComponentRecord& record = result_.directory.component(component);
  const LivenessOptions& liveness = result_.options.liveness;
  const int attempts = std::max(1, liveness.attempts);
  const auto t0 = std::chrono::steady_clock::now();
  auto backoff = liveness.backoff;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (probe_alive(record)) return;
    if (attempt < attempts && backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::chrono::milliseconds(static_cast<long long>(
          static_cast<double>(backoff.count()) * liveness.backoff_factor));
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  throw PeerTimeoutError(record.name, attempts, elapsed);
}

std::optional<minimpi::AbortInfo> Mph::failure_of(
    std::string_view component) const {
  const ComponentRecord& record = result_.directory.component(component);
  minimpi::Job& job = world().job();
  if (auto info = job.domain_abort_info(record.component_id)) return info;
  const std::optional<minimpi::AbortInfo>& info = job.abort_info();
  if (info.has_value() && record.covers_world_rank(info->world_rank)) {
    return info;
  }
  return std::nullopt;
}

void Mph::require_alive(std::string_view component) const {
  if (ping(component)) return;
  const ComponentRecord& record = result_.directory.component(component);
  if (const auto info = failure_of(component)) {
    throw ComponentFailedError(record.name, info->world_rank, info->operation,
                               info->detail);
  }
  throw ComponentFailedError(record.name, -1, "",
                             "a rank of the component failed");
}

std::vector<std::string> Mph::failed_components() const {
  for (const ComponentRecord& record : result_.directory.components()) {
    probe_alive(record);  // refresh the marks; no retries for a sweep
  }
  return result_.directory.failed_components();
}

Mph::FinalizeReport Mph::finalize() {
  if (redirected_) flush_output();
  const minimpi::rank_t my_world = world().global_of(world().rank());
  if (minimpi::Tracer* tracer = world().job().tracer();
      tracer != nullptr && redirected_) {
    tracer->add_counter(my_world, "output_lines(" + channel_.path() + ")",
                        channel_.lines());
  }
  const minimpi::MailboxDrain drained =
      world().job().mailbox(my_world).drain();
  FinalizeReport report;
  report.drained_envelopes = drained.envelopes;
  report.cancelled_requests = drained.posted_recvs;
  if (minimpi::Checker* checker = world().job().checker()) {
    checker->record_drain(my_world, drained.envelopes, drained.posted_recvs);
    if (checker->options().leaks) {
      const minimpi::CheckReport::RankLeak leak = checker->rank_leak(my_world);
      MPH_DIAG_LOG(info) << "MPH_finalize audit: " << leak.to_string();
      // Communicators held by this Mph handle are still alive here, so the
      // per-rank finalize verdict covers only message/request debt; live
      // communicator handles are audited job-wide in JobReport::check.
      if (leak.envelopes > 0 || leak.posted_recvs > 0 ||
          leak.outstanding_requests > 0) {
        throw minimpi::LeakError("MPH_finalize on " + leak.to_string());
      }
    }
  }
  return report;
}

const ArgumentSet& Mph::arguments() const {
  return result_.directory.component(comp_id()).args;
}

Mph Mph::remap(const RegistrySource& new_source,
               HandshakeOptions options) const {
  const Registry registry = new_source.resolve(world());
  return Mph(handshake(world(), registry, result_.declaration, options));
}

void Mph::redirect_output(const std::string& dir) {
  const bool component_root = local_proc_id() == 0;
  channel_ = OutputRouter::instance().open(dir, comp_name(), local_proc_id(),
                                           component_root);
  redirected_ = true;
  if (minimpi::MetricsRegistry* metrics = world().job().metrics()) {
    // Live output_lines(<path>) gauge in every snapshot.  The probe holds
    // the counter by shared_ptr, so it stays valid even after this Mph
    // handle (and its channel) are gone.
    const minimpi::rank_t my_world = world().global_of(world().rank());
    metrics->add_probe(
        my_world, "output_lines(" + channel_.path() + ")",
        [counter = channel_.lines_counter()]() -> std::uint64_t {
          return counter != nullptr
                     ? counter->load(std::memory_order_relaxed)
                     : 0;
        });
  }
}

std::ostream& Mph::out() {
  if (!redirected_) {
    throw MphError("out(): call redirect_output() first");
  }
  return channel_.stream();
}

void Mph::flush_output() { channel_.flush(); }

}  // namespace mph
