// builder.hpp — programmatic construction of registration files.
//
// Deployment scripts and tests often generate `processors_map.in` rather
// than writing it by hand (ensemble sweeps in particular: K instance
// lines with per-instance arguments).  RegistryBuilder assembles a
// Registry with the same validation as the parser, and serializes via
// Registry::to_text() — so generated files round-trip exactly.
//
//   RegistryBuilder b;
//   b.add_single("coupler");
//   b.multi_component()
//       .component("atmosphere", 0, 15)
//       .component("land", 0, 15)          // overlap allowed
//       .component("chemistry", 16, 19)
//       .done();
//   b.multi_instance("Ocean", /*instances=*/4, /*ranks_each=*/16,
//                    [](int i) { return "diff=" + std::to_string(1 + i); });
//   Registry reg = b.build();
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/mph/registry.hpp"

namespace mph {

class RegistryBuilder {
 public:
  /// Fluent sub-builder for one Multi_Component block.
  class MultiComponent {
   public:
    /// Add a component with an inclusive executable-relative range and
    /// optional argument tokens ("key=value" or positional).
    MultiComponent& component(std::string name, int low, int high,
                              std::vector<std::string> args = {});
    /// Finish the block (returns the parent for further chaining).
    RegistryBuilder& done();

   private:
    friend class RegistryBuilder;
    explicit MultiComponent(RegistryBuilder& parent) : parent_(parent) {}
    RegistryBuilder& parent_;
    ExecutableBlock block_;
  };

  /// Add a single-component executable; `size` (if given) becomes the
  /// "name 0 size-1" size assertion.
  RegistryBuilder& add_single(std::string name,
                              std::optional<int> size = std::nullopt,
                              std::vector<std::string> args = {});

  /// Start a Multi_Component block.
  [[nodiscard]] MultiComponent multi_component();

  /// Add a Multi_Instance block of `instances` equal slices of
  /// `ranks_each` ranks, named `<prefix>1..<prefix>K`; `args_for(i)`
  /// (0-based) supplies each instance's argument tokens (may be null).
  RegistryBuilder& multi_instance(
      const std::string& prefix, int instances, int ranks_each,
      const std::function<std::vector<std::string>(int)>& args_for = nullptr);

  /// Validate and produce the Registry (parses the serialized text, so
  /// builder output is exactly as strict as hand-written files).
  [[nodiscard]] Registry build() const;

  /// The registration-file text.
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<ExecutableBlock> blocks_;
};

}  // namespace mph
