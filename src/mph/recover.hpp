// recover.hpp — checkpoint/restore for component state (the first pillar of
// the recovery subsystem; DESIGN.md §13).
//
// A Checkpoint is a versioned, ordered key→blob map with typed helpers for
// the state a component snapshots at a logical barrier: coupler fields
// (full gathered grids), the timemgr clock, accumulator contents, RNG
// state.  A CheckpointStore persists checkpoints to per-member files
// (`<member>.step<N>.ckpt`) with CRC-32 validation and atomic tmp+rename
// writes, retaining the last `retain` steps so a restart can always agree
// on a common step even when components were one coupling interval apart
// when they died (the allreduce-min consistency argument in DESIGN.md §13).
//
// Corrupted or truncated files — bad magic, short reads, CRC mismatch —
// are rejected with a clean SetupError, never interpreted as state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mph::recover {

/// One component snapshot: a step stamp plus named typed entries.
class Checkpoint {
 public:
  /// On-disk format version (bumped on incompatible layout changes; a
  /// mismatch is rejected at parse time with SetupError).
  static constexpr std::uint32_t kFormatVersion = 1;

  Checkpoint() = default;
  explicit Checkpoint(std::uint64_t step) : step_(step) {}

  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }
  void set_step(std::uint64_t step) noexcept { step_ = step; }

  // --- typed entries --------------------------------------------------------

  void put_doubles(std::string_view key, std::span<const double> values);
  void put_u64s(std::string_view key, std::span<const std::uint64_t> values);
  void put_bytes(std::string_view key, std::span<const std::byte> bytes);
  void put_scalar(std::string_view key, double value);
  void put_flag(std::string_view key, bool value);

  /// Typed retrieval; throws SetupError naming the key when it is missing
  /// (a checkpoint from a different component or an older writer).
  [[nodiscard]] std::vector<double> doubles(std::string_view key) const;
  [[nodiscard]] std::vector<std::uint64_t> u64s(std::string_view key) const;
  [[nodiscard]] std::vector<std::byte> bytes(std::string_view key) const;
  [[nodiscard]] double scalar(std::string_view key) const;
  [[nodiscard]] bool flag(std::string_view key) const;

  [[nodiscard]] bool has(std::string_view key) const noexcept;
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }

  // --- serialization --------------------------------------------------------

  /// Serialize: magic, version, step, entries, trailing CRC-32 over
  /// everything before it.
  [[nodiscard]] std::vector<std::byte> to_bytes() const;

  /// Parse; throws SetupError on any corruption (magic, version, length,
  /// CRC).  `what` names the source (e.g. the file path) in the error.
  [[nodiscard]] static Checkpoint from_bytes(std::span<const std::byte> data,
                                             std::string_view what = "buffer");

 private:
  std::uint64_t step_ = 0;
  std::map<std::string, std::vector<std::byte>, std::less<>> entries_;
};

/// Per-member checkpoint files in one directory, newest-`retain` retained.
class CheckpointStore {
 public:
  /// Opens (creating if needed) the store directory.
  explicit CheckpointStore(std::string dir, int retain = 2);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] int retain() const noexcept { return retain_; }

  /// Persist `ckpt` for `member` atomically (write to a tmp file in the
  /// same directory, fsync-free rename over the final name), then prune
  /// files older than the newest `retain` steps.
  void save(std::string_view member, const Checkpoint& ckpt) const;

  /// Steps on disk for `member`, ascending (corrupt files included — they
  /// are rejected at load time, not silently skipped).
  [[nodiscard]] std::vector<std::uint64_t> steps(std::string_view member) const;

  /// Newest step on disk, or nullopt when the member has no checkpoint.
  [[nodiscard]] std::optional<std::uint64_t> latest_step(
      std::string_view member) const;

  /// Load a specific step; nullopt when no such file exists.  Throws
  /// SetupError (naming the file) when the file exists but fails CRC or
  /// format validation.
  [[nodiscard]] std::optional<Checkpoint> load_step(std::string_view member,
                                                    std::uint64_t step) const;

  /// Load the newest checkpoint (nullopt when none exist; SetupError when
  /// the newest file is corrupt).
  [[nodiscard]] std::optional<Checkpoint> load_latest(
      std::string_view member) const;

  /// Path of the checkpoint file for (member, step) — exposed so tests can
  /// corrupt/truncate files deliberately.
  [[nodiscard]] std::string path_of(std::string_view member,
                                    std::uint64_t step) const;

 private:
  std::string dir_;
  int retain_;
};

}  // namespace mph::recover
