#include "src/mph/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/util/json.hpp"
#include "src/util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MPH_MON_HAS_UNIX_SOCKET 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define MPH_MON_HAS_UNIX_SOCKET 0
#endif

namespace mph::mon {

namespace {

using minimpi::MetricsSnapshot;
using minimpi::RankMetrics;
using util::JsonValue;

std::uint64_t get_u64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
}

RankMetrics parse_rank(const JsonValue& obj) {
  RankMetrics r;
  r.world_rank = static_cast<minimpi::rank_t>(get_u64(obj, "rank"));
  if (const JsonValue* c = obj.find("component")) r.component = c->as_string();
  if (const JsonValue* a = obj.find("alive")) r.alive = a->as_bool();
  r.sends = get_u64(obj, "sends");
  r.send_bytes = get_u64(obj, "sendBytes");
  r.delivered = get_u64(obj, "delivered");
  r.delivered_bytes = get_u64(obj, "deliveredBytes");
  r.matches = get_u64(obj, "matches");
  r.collectives = get_u64(obj, "collectives");
  r.faults = get_u64(obj, "faults");
  r.blocked_ns = get_u64(obj, "blockedNs");
  r.queue_depth = get_u64(obj, "queueDepth");
  r.queue_high_water = get_u64(obj, "queueHighWater");
  r.handshake_ns = get_u64(obj, "handshakeNs");
  if (const JsonValue* lat = obj.find("matchLatency")) {
    r.match_latency.count = get_u64(*lat, "count");
    r.match_latency.sum = get_u64(*lat, "sumNs");
    if (const JsonValue* buckets = lat->find("buckets")) {
      const auto& items = buckets->items();
      const std::size_t n =
          std::min(items.size(), minimpi::kMetricsHistogramBuckets);
      for (std::size_t b = 0; b < n; ++b) {
        r.match_latency.buckets[b] =
            static_cast<std::uint64_t>(items[b].as_int());
      }
    }
  }
  if (const JsonValue* values = obj.find("values")) {
    for (const JsonValue& entry : values->items()) {
      r.values.emplace_back(entry.at("name").as_string(),
                            get_u64(entry, "value"));
    }
  }
  return r;
}

/// "12.3k" / "4.5M" style compact magnitude for the table cells.
std::string human(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

MetricsSnapshot parse_snapshot(const std::string& json_line) {
  const JsonValue doc = JsonValue::parse(json_line);
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->as_string() != MetricsSnapshot::kKind) {
    throw std::runtime_error(
        "not an mph_metrics snapshot: expected a JSON object with "
        "\"kind\": \"mph_metrics\" (one line of the monitor's "
        "mph_metrics.jsonl)");
  }
  MetricsSnapshot snap;
  snap.seq = get_u64(doc, "seq");
  snap.t_ns = get_u64(doc, "tNs");
  snap.wall_ms = get_u64(doc, "wallMs");
  if (const JsonValue* job = doc.find("job")) {
    snap.comm.messages = get_u64(*job, "messages");
    snap.comm.payload_bytes = get_u64(*job, "payloadBytes");
    snap.comm.contexts_allocated = get_u64(*job, "contextsAllocated");
    snap.comm.queue_high_water = get_u64(*job, "queueHighWater");
    snap.comm.wildcard_recvs = get_u64(*job, "wildcardRecvs");
    if (const JsonValue* contexts = job->find("contexts")) {
      for (const JsonValue& entry : contexts->items()) {
        snap.comm.messages_by_context.emplace_back(
            static_cast<minimpi::context_t>(entry.at("context").as_int()),
            get_u64(entry, "messages"));
      }
    }
  }
  if (const JsonValue* ranks = doc.find("ranks")) {
    for (const JsonValue& entry : ranks->items()) {
      snap.ranks.push_back(parse_rank(entry));
    }
  }
  return snap;
}

bool looks_like_metrics(const std::string& text) {
  // First line only: a JSONL stream fails whole-document parsing, and the
  // caller usually has the whole file in hand.
  std::string first = text.substr(0, text.find('\n'));
  try {
    const JsonValue doc = JsonValue::parse(first);
    const JsonValue* kind = doc.find("kind");
    return kind != nullptr && kind->as_string() == MetricsSnapshot::kKind;
  } catch (const std::exception&) {
    return false;
  }
}

std::optional<std::string> last_jsonl_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return std::nullopt;
  return last;
}

std::optional<MetricsSnapshot> last_valid_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::optional<MetricsSnapshot> newest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      newest = parse_snapshot(line);
    } catch (const std::exception&) {
      // A torn line from rotation or a half-written tail: skip and keep
      // the newest complete frame seen so far.
    }
  }
  return newest;
}

minimpi::watch::HealthEvent parse_health_event(const std::string& json_line) {
  const JsonValue doc = JsonValue::parse(json_line);
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr ||
      kind->as_string() != minimpi::watch::HealthEvent::kKind) {
    throw std::runtime_error(
        "not an mph_health event: expected a JSON object with "
        "\"kind\": \"mph_health\" (one line of the watcher's "
        "mph_health.jsonl)");
  }
  minimpi::watch::HealthEvent ev;
  ev.seq = get_u64(doc, "seq");
  ev.t_ns = get_u64(doc, "tNs");
  ev.wall_ms = get_u64(doc, "wallMs");
  if (const JsonValue* v = doc.find("rule")) ev.rule = v->as_string();
  if (const JsonValue* v = doc.find("severity")) {
    const std::string name = v->as_string();
    ev.severity = name == "critical" ? minimpi::watch::Severity::critical
                  : name == "info"   ? minimpi::watch::Severity::info
                                     : minimpi::watch::Severity::warning;
  }
  if (const JsonValue* v = doc.find("cleared")) ev.cleared = v->as_bool();
  if (const JsonValue* v = doc.find("subject")) ev.subject = v->as_string();
  if (const JsonValue* v = doc.find("value")) ev.value = v->as_number();
  if (const JsonValue* v = doc.find("threshold")) {
    ev.threshold = v->as_number();
  }
  if (const JsonValue* v = doc.find("message")) ev.message = v->as_string();
  if (const JsonValue* v = doc.find("blame")) ev.blame = v->as_string();
  if (const JsonValue* v = doc.find("flightFile")) {
    ev.flight_file = v->as_string();
  }
  return ev;
}

bool looks_like_health(const std::string& text) {
  std::string first = text.substr(0, text.find('\n'));
  try {
    const JsonValue doc = JsonValue::parse(first);
    const JsonValue* kind = doc.find("kind");
    return kind != nullptr &&
           kind->as_string() == minimpi::watch::HealthEvent::kKind;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<minimpi::watch::HealthEvent> read_health_tail(
    const std::string& path, std::size_t max_events) {
  std::vector<minimpi::watch::HealthEvent> events;
  std::ifstream in(path);
  if (!in) return events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      events.push_back(parse_health_event(line));
    } catch (const std::exception&) {
      // Same tolerance as last_valid_snapshot: skip torn lines.
    }
  }
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return events;
}

std::vector<minimpi::watch::HealthEvent> active_alerts(
    const std::vector<minimpi::watch::HealthEvent>& events) {
  // Replay: the newest edge per rule/subject wins.
  std::vector<minimpi::watch::HealthEvent> active;
  for (const minimpi::watch::HealthEvent& ev : events) {
    const auto it = std::find_if(
        active.begin(), active.end(),
        [&](const minimpi::watch::HealthEvent& a) {
          return a.rule == ev.rule && a.subject == ev.subject;
        });
    if (ev.cleared) {
      if (it != active.end()) active.erase(it);
    } else if (it != active.end()) {
      *it = ev;
    } else {
      active.push_back(ev);
    }
  }
  return active;
}

std::optional<std::string> read_socket_line(const std::string& socket_path) {
#if MPH_MON_HAS_UNIX_SOCKET
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return std::nullopt;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  addr.sun_family = AF_UNIX;
  socket_path.copy(addr.sun_path, socket_path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (out.empty()) return std::nullopt;
  return out;
#else
  (void)socket_path;
  return std::nullopt;
#endif
}

TopView build_top_view(const MetricsSnapshot* prev,
                       const MetricsSnapshot& cur) {
  TopView view;
  view.seq = cur.seq;
  view.wall_ms = cur.wall_ms;
  view.uptime_s = static_cast<double>(cur.t_ns) / 1e9;
  view.total_messages = cur.comm.messages;
  view.total_bytes = cur.comm.payload_bytes;
  view.wildcard_recvs = cur.comm.wildcard_recvs;
  view.queue_high_water = cur.comm.queue_high_water;
  view.ranks = static_cast<int>(cur.ranks.size());
  for (const RankMetrics& r : cur.ranks) {
    if (r.alive) ++view.alive;
  }

  const std::vector<minimpi::ComponentMetrics> comps = cur.by_component();
  const std::vector<minimpi::ComponentMetrics> prev_comps =
      prev != nullptr ? prev->by_component()
                      : std::vector<minimpi::ComponentMetrics>{};
  const double dt_s =
      prev != nullptr && cur.t_ns > prev->t_ns
          ? static_cast<double>(cur.t_ns - prev->t_ns) / 1e9
          : 0.0;
  for (const minimpi::ComponentMetrics& c : comps) {
    TopRow row;
    row.component = c.component;
    row.ranks = c.ranks;
    row.alive = c.alive;
    row.sends = c.sends;
    row.delivered = c.delivered;
    row.queue_depth = c.queue_depth;
    row.queue_high_water = c.queue_high_water;
    if (dt_s > 0.0) {
      const auto it =
          std::find_if(prev_comps.begin(), prev_comps.end(),
                       [&](const minimpi::ComponentMetrics& p) {
                         return p.component == c.component;
                       });
      if (it != prev_comps.end() && c.delivered >= it->delivered) {
        row.msgs_per_s =
            static_cast<double>(c.delivered - it->delivered) / dt_s;
        row.bytes_per_s =
            static_cast<double>(c.delivered_bytes - it->delivered_bytes) /
            dt_s;
        // Blocked time accumulates across the component's ranks, so one
        // fully-blocked rank of n is 100/n percent.
        const double blocked_delta = c.blocked_ns >= it->blocked_ns
                                         ? static_cast<double>(c.blocked_ns -
                                                               it->blocked_ns)
                                         : 0.0;
        const double wall_ns = dt_s * 1e9 * std::max(1, c.ranks);
        row.blocked_pct = std::min(100.0, 100.0 * blocked_delta / wall_ns);
      }
    }
    view.rows.push_back(std::move(row));
  }
  return view;
}

std::string render_top(const TopView& view) {
  char head[160];
  std::snprintf(head, sizeof head,
                "mph_mon  snapshot #%llu  up %.1fs  ranks %d/%d alive\n",
                static_cast<unsigned long long>(view.seq), view.uptime_s,
                view.alive, view.ranks);
  std::string out = head;
  out += "job: " + human(static_cast<double>(view.total_messages)) +
         " msgs, " + human(static_cast<double>(view.total_bytes)) +
         "B payload, " +
         std::to_string(view.wildcard_recvs) + " wildcard recvs, queue hw " +
         std::to_string(view.queue_high_water) + "\n";
  out += pad("COMPONENT", 16) + pad("RANKS", 7) + pad("ALIVE", 7) +
         pad("MSG/S", 9) + pad("BYTES/S", 10) + pad("QUEUE", 7) +
         pad("Q.HW", 7) + pad("BLOCKED%", 9) + "\n";
  for (const TopRow& row : view.rows) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f", row.blocked_pct);
    out += pad(row.component, 16) + pad(std::to_string(row.ranks), 7) +
           pad(std::to_string(row.alive), 7) + pad(human(row.msgs_per_s), 9) +
           pad(human(row.bytes_per_s), 10) +
           pad(std::to_string(row.queue_depth), 7) +
           pad(std::to_string(row.queue_high_water), 7) + pad(pct, 9) + "\n";
  }
  return out;
}

WatchView build_watch_view(std::vector<WatchJob> jobs,
                           std::size_t max_recent) {
  WatchView view;
  view.jobs = std::move(jobs);
  for (std::size_t j = 0; j < view.jobs.size(); ++j) {
    view.active += active_alerts(view.jobs[j].events).size();
    for (const minimpi::watch::HealthEvent& ev : view.jobs[j].events) {
      view.recent.emplace_back(j, ev);
    }
  }
  // Stable sort on the wall-clock stamp merges the jobs' streams into one
  // timeline while keeping each job's own order for equal stamps.
  std::stable_sort(view.recent.begin(), view.recent.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.wall_ms < b.second.wall_ms;
                   });
  if (view.recent.size() > max_recent) {
    view.recent.erase(
        view.recent.begin(),
        view.recent.end() - static_cast<std::ptrdiff_t>(max_recent));
  }
  return view;
}

std::string render_watch(const WatchView& view) {
  std::string out = "mph_watch  " + std::to_string(view.jobs.size()) +
                    " job(s), " + std::to_string(view.active) +
                    " active alert(s)\n";
  for (std::size_t j = 0; j < view.jobs.size(); ++j) {
    const WatchJob& job = view.jobs[j];
    out += "[" + std::to_string(j) + "] " + job.source + "  ";
    if (job.snapshot.has_value()) {
      const MetricsSnapshot& snap = *job.snapshot;
      int alive = 0;
      for (const RankMetrics& r : snap.ranks) {
        if (r.alive) ++alive;
      }
      char line[160];
      std::snprintf(line, sizeof line,
                    "#%llu up %.1fs  ranks %d/%d alive  %s msgs",
                    static_cast<unsigned long long>(snap.seq),
                    static_cast<double>(snap.t_ns) / 1e9, alive,
                    static_cast<int>(snap.ranks.size()),
                    human(static_cast<double>(snap.comm.messages)).c_str());
      out += line;
      out += job.online ? "" : "  (offline)";
    } else {
      out += "(no snapshot)";
    }
    out += "\n";
    for (const minimpi::watch::HealthEvent& ev : active_alerts(job.events)) {
      out += "    ALERT " + std::string(minimpi::watch::severity_name(ev.severity)) + " " +
             ev.rule + "/" + ev.subject + ": " + ev.message;
      if (!ev.blame.empty()) out += "  [blame: " + ev.blame + "]";
      out += "\n";
    }
  }
  if (!view.recent.empty()) {
    out += "recent events:\n";
    for (const auto& [j, ev] : view.recent) {
      out += "  [" + std::to_string(j) + "] " +
             std::string(minimpi::watch::severity_name(ev.severity)) +
             (ev.cleared ? " cleared " : " fired   ") + ev.rule + "/" +
             ev.subject + ": " + ev.message + "\n";
    }
  }
  return out;
}

}  // namespace mph::mon
