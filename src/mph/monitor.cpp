#include "src/mph/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/util/json.hpp"
#include "src/util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MPH_MON_HAS_UNIX_SOCKET 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define MPH_MON_HAS_UNIX_SOCKET 0
#endif

namespace mph::mon {

namespace {

using minimpi::MetricsSnapshot;
using minimpi::RankMetrics;
using util::JsonValue;

std::uint64_t get_u64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
}

RankMetrics parse_rank(const JsonValue& obj) {
  RankMetrics r;
  r.world_rank = static_cast<minimpi::rank_t>(get_u64(obj, "rank"));
  if (const JsonValue* c = obj.find("component")) r.component = c->as_string();
  if (const JsonValue* a = obj.find("alive")) r.alive = a->as_bool();
  r.sends = get_u64(obj, "sends");
  r.send_bytes = get_u64(obj, "sendBytes");
  r.delivered = get_u64(obj, "delivered");
  r.delivered_bytes = get_u64(obj, "deliveredBytes");
  r.matches = get_u64(obj, "matches");
  r.collectives = get_u64(obj, "collectives");
  r.faults = get_u64(obj, "faults");
  r.blocked_ns = get_u64(obj, "blockedNs");
  r.queue_depth = get_u64(obj, "queueDepth");
  r.queue_high_water = get_u64(obj, "queueHighWater");
  r.handshake_ns = get_u64(obj, "handshakeNs");
  if (const JsonValue* lat = obj.find("matchLatency")) {
    r.match_latency.count = get_u64(*lat, "count");
    r.match_latency.sum = get_u64(*lat, "sumNs");
    if (const JsonValue* buckets = lat->find("buckets")) {
      const auto& items = buckets->items();
      const std::size_t n =
          std::min(items.size(), minimpi::kMetricsHistogramBuckets);
      for (std::size_t b = 0; b < n; ++b) {
        r.match_latency.buckets[b] =
            static_cast<std::uint64_t>(items[b].as_int());
      }
    }
  }
  if (const JsonValue* values = obj.find("values")) {
    for (const JsonValue& entry : values->items()) {
      r.values.emplace_back(entry.at("name").as_string(),
                            get_u64(entry, "value"));
    }
  }
  return r;
}

/// "12.3k" / "4.5M" style compact magnitude for the table cells.
std::string human(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

MetricsSnapshot parse_snapshot(const std::string& json_line) {
  const JsonValue doc = JsonValue::parse(json_line);
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->as_string() != MetricsSnapshot::kKind) {
    throw std::runtime_error(
        "not an mph_metrics snapshot: expected a JSON object with "
        "\"kind\": \"mph_metrics\" (one line of the monitor's "
        "mph_metrics.jsonl)");
  }
  MetricsSnapshot snap;
  snap.seq = get_u64(doc, "seq");
  snap.t_ns = get_u64(doc, "tNs");
  if (const JsonValue* job = doc.find("job")) {
    snap.comm.messages = get_u64(*job, "messages");
    snap.comm.payload_bytes = get_u64(*job, "payloadBytes");
    snap.comm.contexts_allocated = get_u64(*job, "contextsAllocated");
    snap.comm.queue_high_water = get_u64(*job, "queueHighWater");
    snap.comm.wildcard_recvs = get_u64(*job, "wildcardRecvs");
    if (const JsonValue* contexts = job->find("contexts")) {
      for (const JsonValue& entry : contexts->items()) {
        snap.comm.messages_by_context.emplace_back(
            static_cast<minimpi::context_t>(entry.at("context").as_int()),
            get_u64(entry, "messages"));
      }
    }
  }
  if (const JsonValue* ranks = doc.find("ranks")) {
    for (const JsonValue& entry : ranks->items()) {
      snap.ranks.push_back(parse_rank(entry));
    }
  }
  return snap;
}

bool looks_like_metrics(const std::string& text) {
  // First line only: a JSONL stream fails whole-document parsing, and the
  // caller usually has the whole file in hand.
  std::string first = text.substr(0, text.find('\n'));
  try {
    const JsonValue doc = JsonValue::parse(first);
    const JsonValue* kind = doc.find("kind");
    return kind != nullptr && kind->as_string() == MetricsSnapshot::kKind;
  } catch (const std::exception&) {
    return false;
  }
}

std::optional<std::string> last_jsonl_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return std::nullopt;
  return last;
}

std::optional<std::string> read_socket_line(const std::string& socket_path) {
#if MPH_MON_HAS_UNIX_SOCKET
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return std::nullopt;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  addr.sun_family = AF_UNIX;
  socket_path.copy(addr.sun_path, socket_path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (out.empty()) return std::nullopt;
  return out;
#else
  (void)socket_path;
  return std::nullopt;
#endif
}

TopView build_top_view(const MetricsSnapshot* prev,
                       const MetricsSnapshot& cur) {
  TopView view;
  view.seq = cur.seq;
  view.uptime_s = static_cast<double>(cur.t_ns) / 1e9;
  view.total_messages = cur.comm.messages;
  view.total_bytes = cur.comm.payload_bytes;
  view.wildcard_recvs = cur.comm.wildcard_recvs;
  view.queue_high_water = cur.comm.queue_high_water;
  view.ranks = static_cast<int>(cur.ranks.size());
  for (const RankMetrics& r : cur.ranks) {
    if (r.alive) ++view.alive;
  }

  const std::vector<minimpi::ComponentMetrics> comps = cur.by_component();
  const std::vector<minimpi::ComponentMetrics> prev_comps =
      prev != nullptr ? prev->by_component()
                      : std::vector<minimpi::ComponentMetrics>{};
  const double dt_s =
      prev != nullptr && cur.t_ns > prev->t_ns
          ? static_cast<double>(cur.t_ns - prev->t_ns) / 1e9
          : 0.0;
  for (const minimpi::ComponentMetrics& c : comps) {
    TopRow row;
    row.component = c.component;
    row.ranks = c.ranks;
    row.alive = c.alive;
    row.sends = c.sends;
    row.delivered = c.delivered;
    row.queue_depth = c.queue_depth;
    row.queue_high_water = c.queue_high_water;
    if (dt_s > 0.0) {
      const auto it =
          std::find_if(prev_comps.begin(), prev_comps.end(),
                       [&](const minimpi::ComponentMetrics& p) {
                         return p.component == c.component;
                       });
      if (it != prev_comps.end() && c.delivered >= it->delivered) {
        row.msgs_per_s =
            static_cast<double>(c.delivered - it->delivered) / dt_s;
        row.bytes_per_s =
            static_cast<double>(c.delivered_bytes - it->delivered_bytes) /
            dt_s;
        // Blocked time accumulates across the component's ranks, so one
        // fully-blocked rank of n is 100/n percent.
        const double blocked_delta = c.blocked_ns >= it->blocked_ns
                                         ? static_cast<double>(c.blocked_ns -
                                                               it->blocked_ns)
                                         : 0.0;
        const double wall_ns = dt_s * 1e9 * std::max(1, c.ranks);
        row.blocked_pct = std::min(100.0, 100.0 * blocked_delta / wall_ns);
      }
    }
    view.rows.push_back(std::move(row));
  }
  return view;
}

std::string render_top(const TopView& view) {
  char head[160];
  std::snprintf(head, sizeof head,
                "mph_mon  snapshot #%llu  up %.1fs  ranks %d/%d alive\n",
                static_cast<unsigned long long>(view.seq), view.uptime_s,
                view.alive, view.ranks);
  std::string out = head;
  out += "job: " + human(static_cast<double>(view.total_messages)) +
         " msgs, " + human(static_cast<double>(view.total_bytes)) +
         "B payload, " +
         std::to_string(view.wildcard_recvs) + " wildcard recvs, queue hw " +
         std::to_string(view.queue_high_water) + "\n";
  out += pad("COMPONENT", 16) + pad("RANKS", 7) + pad("ALIVE", 7) +
         pad("MSG/S", 9) + pad("BYTES/S", 10) + pad("QUEUE", 7) +
         pad("Q.HW", 7) + pad("BLOCKED%", 9) + "\n";
  for (const TopRow& row : view.rows) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f", row.blocked_pct);
    out += pad(row.component, 16) + pad(std::to_string(row.ranks), 7) +
           pad(std::to_string(row.alive), 7) + pad(human(row.msgs_per_s), 9) +
           pad(human(row.bytes_per_s), 10) +
           pad(std::to_string(row.queue_depth), 7) +
           pad(std::to_string(row.queue_high_water), 7) + pad(pct, 9) + "\n";
  }
  return out;
}

}  // namespace mph::mon
