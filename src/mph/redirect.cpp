#include "src/mph/redirect.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/mph/errors.hpp"

namespace mph {

namespace detail {

class Sink {
 public:
  explicit Sink(const std::string& path) : out_(path, std::ios::app) {
    if (!out_) {
      throw MphError("redirect: cannot open log file '" + path + "'");
    }
  }

  /// Append `line` (must include its trailing newline) atomically.
  void commit(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << line;
    out_.flush();
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

class LineBuf : public std::streambuf {
 public:
  LineBuf(std::shared_ptr<Sink> sink, std::string prefix)
      : sink_(std::move(sink)),
        prefix_(std::move(prefix)),
        lines_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  ~LineBuf() override { flush_partial(); }

  void flush_partial() {
    if (!pending_.empty()) {
      sink_->commit(prefix_ + pending_ + "\n");
      pending_.clear();
      lines_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Lines committed through this channel so far.
  [[nodiscard]] std::uint64_t lines() const noexcept {
    return lines_->load(std::memory_order_relaxed);
  }

  /// Shared handle to the line counter — the mph_mon registry samples it
  /// from the monitor thread, possibly after this channel is destroyed,
  /// so the counter's lifetime is decoupled from the buffer's.
  [[nodiscard]] std::shared_ptr<const std::atomic<std::uint64_t>>
  lines_counter() const noexcept {
    return lines_;
  }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    if (ch == '\n') {
      sink_->commit(prefix_ + pending_ + "\n");
      pending_.clear();
      lines_->fetch_add(1, std::memory_order_relaxed);
    } else {
      pending_.push_back(static_cast<char>(ch));
    }
    return ch;
  }

  int sync() override {
    flush_partial();
    return 0;
  }

 private:
  std::shared_ptr<Sink> sink_;
  std::string prefix_;
  std::string pending_;
  std::shared_ptr<std::atomic<std::uint64_t>> lines_;
};

}  // namespace detail

OutputChannel::OutputChannel() = default;
OutputChannel::~OutputChannel() = default;
OutputChannel::OutputChannel(OutputChannel&&) noexcept = default;
OutputChannel& OutputChannel::operator=(OutputChannel&&) noexcept = default;

OutputChannel::OutputChannel(std::shared_ptr<detail::Sink> sink,
                             std::string path, std::string prefix)
    : path_(std::move(path)),
      buf_(std::make_unique<detail::LineBuf>(std::move(sink),
                                             std::move(prefix))),
      stream_(std::make_unique<std::ostream>(buf_.get())) {}

std::ostream& OutputChannel::stream() {
  if (stream_ == nullptr) {
    throw MphError("redirect: writing to an unopened output channel "
                   "(call Mph::redirect_output first)");
  }
  return *stream_;
}

void OutputChannel::flush() {
  if (buf_ != nullptr) buf_->flush_partial();
}

std::uint64_t OutputChannel::lines() const noexcept {
  return buf_ != nullptr ? buf_->lines() : 0;
}

std::shared_ptr<const std::atomic<std::uint64_t>> OutputChannel::lines_counter()
    const noexcept {
  return buf_ != nullptr ? buf_->lines_counter() : nullptr;
}

OutputRouter& OutputRouter::instance() {
  static OutputRouter router;
  return router;
}

OutputChannel OutputRouter::open(const std::string& dir,
                                 const std::string& component, int local_rank,
                                 bool component_root, bool prefix_lines) {
  // Create the output directory (default "logs") on demand so callers do
  // not have to; failures surface as the Sink's cannot-open error below.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      dir + "/" + (component_root ? component + ".log"
                                  : std::string(kCombinedLogName));
  std::shared_ptr<detail::Sink> sink;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto cached = sinks_[path].lock()) {
      sink = std::move(cached);
    } else {
      sink = std::make_shared<detail::Sink>(path);
      sinks_[path] = sink;
    }
  }
  std::string prefix;
  if (prefix_lines) {
    prefix = "[" + component + ":" + std::to_string(local_rank) + "] ";
  }
  return OutputChannel(std::move(sink), path, std::move(prefix));
}

void OutputRouter::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sinks_.begin(); it != sinks_.end();) {
    if (it->second.expired()) {
      it = sinks_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mph
