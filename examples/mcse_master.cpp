// mcse_master — MCSE mode (paper §2.2/§4.2): every component compiled into
// ONE executable, with a master program that dispatches each processor to
// its component via PROC_in_component, written against the paper-spelling
// compat API so the code reads like the paper's Fortran listing:
//
//   call MPH_setup_SE(...)
//   if (PROC_in_component("ocean", comm))      call ocean_xyz(comm)
//   if (PROC_in_component("atmosphere", comm)) call atmosphere(comm)
//   if (PROC_in_component("coupler", comm))    call coupler_abc(comm)
//
// Note the subroutine names do not match the name-tags — §4.2 emphasizes
// they need not.
#include <cstdio>
#include <string>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/mph/compat.hpp"

namespace {

const std::string kRegistry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 3
ocean 4 6
coupler 7 7
Multi_Component_End
END
)";

/// "call ocean_xyz(comm)" — any name works.
void ocean_xyz(const minimpi::Comm& comm) {
  const int n = minimpi::allreduce_value(comm, 1, minimpi::op::Sum{});
  if (comm.rank() == 0) {
    std::printf("[ocean]      running on %d processes (world rank %d is "
                "local rank 0)\n",
                n, mph::compat::MPH_global_proc_id());
    mph::compat::current().send(17.5, "coupler", 0, 1);
  }
}

void atmosphere(const minimpi::Comm& comm) {
  const int n = minimpi::allreduce_value(comm, 1, minimpi::op::Sum{});
  if (comm.rank() == 0) {
    std::printf("[atmosphere] running on %d processes\n", n);
    mph::compat::current().send(23.25, "coupler", 0, 1);
  }
}

void coupler_abc(const minimpi::Comm& comm) {
  if (comm.rank() == 0) {
    double sst = 0, t_atm = 0;
    mph::compat::current().recv(sst, "ocean", 0, 1);
    mph::compat::current().recv(t_atm, "atmosphere", 0, 1);
    std::printf("[coupler]    received SST=%.2f and T=%.2f; flux c(T-SST)="
                "%.2f\n",
                sst, t_atm, 1.2 * (t_atm - sst));
  }
}

/// The master program every rank of the single executable runs.
void master(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  using namespace mph::compat;
  // MPH_setup_SE: one executable declaring all three components.
  (void)MPH_components_setup(world,
                             mph::RegistrySource::from_text(kRegistry),
                             {"atmosphere", "ocean", "coupler"});

  minimpi::Comm comm;
  if (PROC_in_component("ocean", comm)) ocean_xyz(comm);
  if (PROC_in_component("atmosphere", comm)) atmosphere(comm);
  if (PROC_in_component("coupler", comm)) coupler_abc(comm);

  clear_current();
}

}  // namespace

int main() {
  // MCSE job launching "is merely launching an executable" (§2.2): one
  // entry, 8 processes.
  const minimpi::JobReport report =
      minimpi::run_mpmd({{"climate-model", 8, master, {}}});
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("mcse_master: OK\n");
  return 0;
}
