// ensemble — MIME mode (paper §2.5/§4.4): a 4-instance ocean ensemble run
// as ONE job, with a statistics component computing on-the-fly ensemble
// mean, variance, min/max, and the median (a nonlinear order statistic
// that cannot be recovered from post-processed independent runs), and
// optionally steering the instances toward the ensemble mean.
//
// Each instance reads its own parameters from the registration file:
// diffusivity perturbation (diff=...) and an input-file field — the paper's
// "different input/output names can be passed on to different runs".
//
// The ensemble runs with MIME failure isolation: a rank failure inside one
// member aborts only that member, the siblings and the statistics
// component run to completion, and the statistics aggregate the survivors.
// `--kill` demonstrates this with deterministic fault injection.
//
// With `--ckpt DIR` every member (and the statistics) checkpoints each
// coupling interval into DIR; adding `--heal` runs the job under the
// respawning supervisor: a killed member is relaunched, restores its
// latest checkpoint, rejoins the running application, and the final
// statistics are identical to the fault-free run.
//
// Run:   ./ensemble [gain] [--kill Member[:interval]] [--ckpt DIR] [--heal]
//        (gain 0 = free ensemble, >0 = steered;
//         --kill Ocean3:2 kills member Ocean3 at coupling interval 2)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "src/climate/scenario.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"
#include "src/mph/recover.hpp"

namespace {

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin   ! 4 ocean ensemble members, one executable
Ocean1 0 1  ocean1.nml diff=0.5
Ocean2 2 3  ocean2.nml diff=0.8
Ocean3 4 5  ocean3.nml diff=1.3
Ocean4 6 7  ocean4.nml diff=2.0
Multi_Instance_End
statistics             ! aggregates the instantaneous ensemble state
END
)";

constexpr int kMembers = 4;
constexpr int kRanksPerMember = 2;

std::string g_store_dir;  ///< --ckpt DIR; empty = recovery off
bool g_heal = false;      ///< --heal: supervisor respawn + liveness retries

mph::climate::ClimateConfig make_config() {
  mph::climate::ClimateConfig cfg;
  cfg.ocn_nlon = 36;
  cfg.ocn_nlat = 18;
  cfg.steps_per_interval = 5;
  cfg.intervals = 8;
  return cfg;
}

mph::HandshakeOptions isolated() {
  mph::HandshakeOptions options;
  options.isolate_instances = true;
  if (g_heal) {
    // Ride out the death-to-respawn window: probe a dead peer for up to
    // ~10 s before declaring it gone for good.
    options.liveness.attempts = 200;
    options.liveness.backoff = std::chrono::milliseconds(50);
    options.liveness.backoff_factor = 1.0;
  }
  return options;
}

void instance_main(const minimpi::Comm& world, const minimpi::ExecEnv& env) {
  // One executable, replicated 4 times by MPH (§4.4):
  //   Ocean_World = MPH_multi_instance("Ocean")
  // A respawned incarnation must NOT redo the world-collective handshake
  // (the survivors are mid-run): it rejoins from the blackboard layout.
  mph::Mph h = env.incarnation == 0
                   ? mph::Mph::multi_instance(
                         world, mph::RegistrySource::from_text(kRegistry),
                         "Ocean", isolated())
                   : mph::Mph::rejoin_instance(world, "Ocean", isolated());

  // Per-instance parameters, exactly the paper's MPH_get_argument.
  double diff = 1.0;
  h.get_argument("diff", diff);
  std::string namelist = "<none>";
  h.get_argument_field(1, namelist);
  if (h.local_proc_id() == 0) {
    if (env.incarnation == 0) {
      std::printf("[%s] %d ranks, namelist=%s, diff=%.2f\n",
                  h.comp_name().c_str(), h.comp_comm().size(),
                  namelist.c_str(), diff);
    } else {
      std::printf("[%s] incarnation %d rejoined; restoring from %s\n",
                  h.comp_name().c_str(), env.incarnation,
                  g_store_dir.c_str());
    }
  }

  std::optional<mph::recover::CheckpointStore> store;
  mph::climate::RecoverySpec spec;
  if (!g_store_dir.empty()) {
    store.emplace(g_store_dir);
    spec.store = &*store;
  }
  (void)mph::climate::run_ensemble_instance(h, make_config(), "statistics",
                                            store ? &spec : nullptr);
}

void statistics_main(const minimpi::Comm& world, const minimpi::ExecEnv& env) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), {"statistics"},
      isolated());
  const double gain = env.args.empty() ? 0.0 : std::atof(env.args[0].c_str());

  std::optional<mph::recover::CheckpointStore> store;
  mph::climate::RecoverySpec spec;
  if (!g_store_dir.empty()) {
    store.emplace(g_store_dir);
    spec.store = &*store;
  }
  const mph::climate::EnsembleResult result =
      mph::climate::run_ensemble_statistics(h, make_config(), "Ocean", gain,
                                            store ? &spec : nullptr);

  std::printf("\nensemble SST statistics per coupling interval (gain=%.2f):\n",
              gain);
  std::printf("interval |     mean |   median |      min |      max |  stddev\n");
  for (std::size_t i = 0; i < result.snapshots.size(); ++i) {
    const auto& s = result.snapshots[i];
    std::printf("%8zu | %8.4f | %8.4f | %8.4f | %8.4f | %7.4f\n", i, s.mean,
                s.median, s.min, s.max, std::sqrt(s.variance));
  }
  for (const std::string& member : result.healed_members) {
    std::printf("member %s died and was HEALED in place; every interval "
                "aggregates the full ensemble\n",
                member.c_str());
  }
  for (const std::string& member : result.failed_members) {
    const auto failure = h.failure_of(member);
    std::printf("member %s FAILED (%s); its samples were skipped\n",
                member.c_str(),
                failure ? failure->to_string().c_str() : "cause unknown");
  }
  const mph::Mph::FinalizeReport fin = h.finalize();
  if (!fin.clean()) {
    std::printf("statistics finalize: %zu envelope(s) from dead members "
                "discarded\n",
                fin.drained_envelopes);
  }
}

/// "Member[:interval]" → kill plan pinning member's first world rank at the
/// given coupling interval (run_ensemble_instance's fault checkpoint).
/// With checkpointing on, the member loop numbers its kill points 2i (the
/// interval boundary) and 2i+1 (between its sample and its nudge) — the
/// interval given here maps to the boundary point.
minimpi::FaultPlan parse_kill(const std::string& spec, bool recovery) {
  std::string member = spec;
  std::uint64_t interval = 0;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    member = spec.substr(0, colon);
    interval = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  }
  // Members occupy contiguous world ranks in registration order.
  for (int m = 0; m < kMembers; ++m) {
    if (member == "Ocean" + std::to_string(m + 1)) {
      minimpi::FaultPlan plan;
      plan.kill_at_step(m * kRanksPerMember,
                        recovery ? 2 * interval : interval);
      return plan;
    }
  }
  std::fprintf(stderr, "unknown ensemble member '%s' (Ocean1..Ocean%d)\n",
               member.c_str(), kMembers);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string gain = "0";
  std::string kill_spec;
  minimpi::JobOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kill" && i + 1 < argc) {
      kill_spec = argv[++i];
    } else if (arg == "--ckpt" && i + 1 < argc) {
      g_store_dir = argv[++i];
    } else if (arg == "--heal") {
      g_heal = true;
    } else {
      gain = arg;
    }
  }
  if (g_heal && g_store_dir.empty()) {
    std::fprintf(stderr, "--heal requires --ckpt DIR (the replacement "
                         "restores from the checkpoint store)\n");
    return 2;
  }
  if (!kill_spec.empty()) {
    options.faults = parse_kill(kill_spec, !g_store_dir.empty());
  }
  if (g_heal) {
    options.respawn.enabled = true;
    options.respawn.max_respawns = kMembers;
    options.respawn.backoff = std::chrono::milliseconds(10);
  }

  const minimpi::JobReport report = minimpi::run_mpmd(
      {
          // ONE executable entry replicated over 8 ranks: MPH expands it
          // into the 4 named instances from the registration file.
          {"ocean-ensemble", kMembers * kRanksPerMember, instance_main, {}},
          {"statistics", 1, statistics_main, {gain}},
      },
      options);
  for (const minimpi::RankFailure& f : report.contained) {
    std::printf("contained: world rank %d (%s): %s\n", f.world_rank,
                f.component.c_str(), f.what.c_str());
  }
  for (const minimpi::RespawnEvent& e : report.recovery.respawns) {
    std::printf("respawned %s (incarnation %d) after %s\n", e.label.c_str(),
                e.incarnation, e.cause.c_str());
  }
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("ensemble: OK%s%s\n",
              report.contained.empty() ? "" : " (with contained failures)",
              report.recovery.healed() ? " (healed)" : "");
  return 0;
}
