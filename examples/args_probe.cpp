// args_probe — a tour of MPH's inquiry (§5.3), argument passing (§4.4),
// joint communicators (§5.1), and overlap support (§4.2): a
// multi-component executable whose components overlap on processors, plus
// a single-component "viz" executable joined to the atmosphere on demand.
#include <cstdio>
#include <string>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"

namespace {

const std::string kRegistry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 3 output=atm.nc checkpoint=on
land       0 3 soil_layers=4          ! fully overlaps the atmosphere
chemistry  4 5 mechanism=fast co2=420
Multi_Component_End
viz
END
)";

void model_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry),
      {"atmosphere", "land", "chemistry"});

  // --- §5.3 inquiry, printed once per component root. ---------------------
  for (const std::string& name : h.my_components()) {
    const minimpi::Comm& comm = h.comp_comm(name);
    if (comm.rank() == 0) {
      std::printf("[%s] local 0 = world %d; component spans world %d..%d; "
                  "%d of %d components total\n",
                  name.c_str(), h.global_proc_id(),
                  h.directory().component(name).global_low,
                  h.directory().component(name).global_high,
                  h.directory().component(name).component_id + 1,
                  h.total_components());
    }
  }

  // --- §4.4 arguments on multi-component executables. ----------------------
  if (h.comp_name() == "atmosphere" && h.local_proc_id() == 0) {
    std::string output;
    bool checkpoint = false;
    h.get_argument("output", output);
    h.get_argument("checkpoint", checkpoint);
    int soil_layers = 0;
    // The land line is searched too: this rank overlaps both components.
    h.get_argument("soil_layers", soil_layers);
    std::printf("[atmosphere] output=%s checkpoint=%d soil_layers=%d\n",
                output.c_str(), static_cast<int>(checkpoint), soil_layers);
  }
  if (h.comp_name() == "chemistry" && h.local_proc_id() == 0) {
    int co2 = 0;
    std::string mechanism;
    h.get_argument("co2", co2);
    h.get_argument("mechanism", mechanism);
    std::printf("[chemistry] mechanism=%s co2=%d\n", mechanism.c_str(), co2);
  }

  // --- §5.1 join: atmosphere + viz share a communicator for output. --------
  if (h.proc_in_component("atmosphere")) {
    const minimpi::Comm joint = h.comm_join("atmosphere", "viz");
    // Atmosphere ranks 0..3, viz ranks 4..4 in the joint communicator.
    const std::vector<int> ranks =
        minimpi::allgather_value(joint, h.global_proc_id());
    if (joint.rank() == 0) {
      std::printf("[join] atmosphere+viz joint comm of %d ranks (world:",
                  joint.size());
      for (int r : ranks) std::printf(" %d", r);
      std::printf(")\n");
    }
  }
}

void viz_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), {"viz"});
  // Mirror the atmosphere's join call (collective over the union).
  const minimpi::Comm joint = h.comm_join("atmosphere", "viz");
  const std::vector<int> ranks =
      minimpi::allgather_value(joint, h.global_proc_id());
  std::printf("[viz] joined the atmosphere: I am joint rank %d of %d\n",
              joint.rank(), joint.size());
}

}  // namespace

int main() {
  const minimpi::JobReport report = minimpi::run_mpmd({
      {"model", 6, model_main, {}},
      {"viz", 1, viz_main, {}},
  });
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("args_probe: OK\n");
  return 0;
}
