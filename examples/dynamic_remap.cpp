// dynamic_remap — the paper's §9 "further work" items in action:
//   (a) SMP-node awareness: node-local communicators inside a component
//       when the same processors are carved into SMP nodes;
//   (b) dynamic component processor allocation: the ocean grows and the
//       atmosphere shrinks mid-run via Mph::remap, with no relaunch;
//   (c) weight-driven rebalancing INSIDE a component: measured per-rank
//       step times feed a Rebalancer (the laik_setweight idea), which
//       proposes a weighted decomposition, and repartition() moves the
//       field data — no relaunch, no coupler involvement.
//
// One multi-component executable runs two phases of a toy workload: phase
// 1 gives the atmosphere 6 of 8 ranks; a load "measurement" then decides
// the ocean deserves more, and phase 2 re-handshakes with a rebalanced
// registration file.  The grown ocean then rebalances its own grid across
// its new ranks from synthetic step-time measurements.
#include <cstdio>
#include <string>
#include <vector>

#include "src/coupler/rebalance.hpp"
#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/topology.hpp"
#include "src/mph/builder.hpp"
#include "src/mph/mph.hpp"

namespace {

std::string phase_registry(int atm_ranks, int total) {
  mph::RegistryBuilder b;
  b.multi_component()
      .component("atmosphere", 0, atm_ranks - 1)
      .component("ocean", atm_ranks, total - 1)
      .done();
  return b.to_text();
}

double fake_workload(const minimpi::Comm& comm, int weight) {
  // A toy "load metric": weight units of work split across the component.
  const double mine = static_cast<double>(weight) / comm.size();
  return minimpi::allreduce_value(comm, mine, minimpi::op::Sum{}) /
         comm.size();
}

/// §9 further work (c): the ocean's grid, block-distributed over its new
/// ranks, turns out imbalanced (rank 0 is on slow hardware, say).  Every
/// rank feeds the SAME measured step times into its own Rebalancer — the
/// decision is deterministic from its inputs, so all ranks agree on the
/// new layout without communication — then repartition() shuffles the
/// field between the two decompositions over the component communicator.
void rebalance_ocean(const mph::Mph& h) {
  using mph::coupler::Decomp;
  using mph::coupler::Rebalancer;

  const minimpi::Comm& comm = h.comp_comm();
  constexpr std::int64_t kGrid = 36 * 18;
  const Decomp current = Decomp::block(kGrid, comm.size());

  // My slice of the field, f(g) = 3g + 1 so every value is checkable.
  std::vector<double> local(
      static_cast<std::size_t>(current.local_size(comm.rank())));
  for (std::size_t l = 0; l < local.size(); ++l) {
    local[l] = 3.0 * static_cast<double>(
                         current.to_global(comm.rank(),
                                           static_cast<std::int64_t>(l))) +
               1.0;
  }

  // "Measured" per-rank wall seconds for the last coupling interval: rank
  // 0 is twice as slow as its peers.
  std::vector<double> step_seconds(static_cast<std::size_t>(comm.size()),
                                   1.0);
  step_seconds[0] = 2.0;

  Rebalancer rebalancer(
      mph::coupler::RebalancePolicy{.trigger_imbalance = 1.2,
                                    .smoothing = 1.0});
  const auto proposal = rebalancer.propose(current, step_seconds);
  if (!proposal.has_value()) {
    if (comm.rank() == 0) std::printf("[rebalance] layout already balanced\n");
    return;
  }
  const std::vector<double> moved =
      mph::coupler::repartition(comm, current, *proposal, local, /*tag=*/40);

  // Every value still lives where the new decomposition says it should.
  for (std::size_t l = 0; l < moved.size(); ++l) {
    const std::int64_t g =
        proposal->to_global(comm.rank(), static_cast<std::int64_t>(l));
    if (moved[l] != 3.0 * static_cast<double>(g) + 1.0) {
      std::printf("[rebalance] DATA LOSS at global index %lld\n",
                  static_cast<long long>(g));
      return;
    }
  }
  std::printf("[rebalance] ocean rank %d: %lld -> %lld indices "
              "(imbalance was %.2f)\n",
              comm.rank(),
              static_cast<long long>(current.local_size(comm.rank())),
              static_cast<long long>(proposal->local_size(comm.rank())),
              rebalancer.last_imbalance());
}

void model_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  constexpr int kTotal = 8;
  const mph::RegistrySource phase1 =
      mph::RegistrySource::from_text(phase_registry(6, kTotal));

  mph::Mph h = mph::Mph::components_setup(world, phase1,
                                          {"atmosphere", "ocean"});

  // --- §9a: node-local view of my component. -----------------------------
  const minimpi::Topology topo = minimpi::Topology::uniform(kTotal, 4);
  const minimpi::Comm node = h.node_comm(topo);
  if (h.local_proc_id() == 0 && world.rank() == h.exe_low_proc_limit()) {
    std::printf("[phase 1] %s\n", h.directory().describe().c_str());
  }
  if (node.rank() == 0) {
    std::printf("[phase 1] %s: node %d hosts %d of my %d ranks\n",
                h.comp_name().c_str(), h.node_id(topo), node.size(),
                h.comp_comm().size());
  }

  // Phase-1 workload: the ocean is overloaded (few ranks, heavy work).
  const double load = fake_workload(h.comp_comm(),
                                    h.comp_name() == "ocean" ? 96 : 24);
  if (h.local_proc_id() == 0) {
    std::printf("[phase 1] %s: per-rank load %.1f\n", h.comp_name().c_str(),
                load);
  }

  // --- §9b: rebalance — ocean gets 6 ranks, atmosphere 2. -----------------
  const mph::RegistrySource phase2 =
      mph::RegistrySource::from_text(phase_registry(2, kTotal));
  mph::Mph h2 = h.remap(phase2);

  if (h2.local_proc_id() == 0 && world.rank() == h2.exe_low_proc_limit()) {
    std::printf("[phase 2] %s\n", h2.directory().describe().c_str());
  }
  const double load2 = fake_workload(h2.comp_comm(),
                                     h2.comp_name() == "ocean" ? 96 : 24);
  if (h2.local_proc_id() == 0) {
    std::printf("[phase 2] %s: per-rank load %.1f\n", h2.comp_name().c_str(),
                load2);
  }

  // --- §9c: weight-driven repartition inside the grown ocean. -------------
  if (h2.comp_name() == "ocean") rebalance_ocean(h2);
}

}  // namespace

int main() {
  const minimpi::JobReport report =
      minimpi::run_mpmd({{"model", 8, model_main, {}}});
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("dynamic_remap: OK (job moved %llu messages, %llu bytes)\n",
              static_cast<unsigned long long>(report.stats.messages),
              static_cast<unsigned long long>(report.stats.payload_bytes));
  return 0;
}
