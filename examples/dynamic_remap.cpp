// dynamic_remap — the paper's §9 "further work" items in action:
//   (a) SMP-node awareness: node-local communicators inside a component
//       when the same processors are carved into SMP nodes;
//   (b) dynamic component processor allocation: the ocean grows and the
//       atmosphere shrinks mid-run via Mph::remap, with no relaunch.
//
// One multi-component executable runs two phases of a toy workload: phase
// 1 gives the atmosphere 6 of 8 ranks; a load "measurement" then decides
// the ocean deserves more, and phase 2 re-handshakes with a rebalanced
// registration file.
#include <cstdio>
#include <string>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/topology.hpp"
#include "src/mph/builder.hpp"
#include "src/mph/mph.hpp"

namespace {

std::string phase_registry(int atm_ranks, int total) {
  mph::RegistryBuilder b;
  b.multi_component()
      .component("atmosphere", 0, atm_ranks - 1)
      .component("ocean", atm_ranks, total - 1)
      .done();
  return b.to_text();
}

double fake_workload(const minimpi::Comm& comm, int weight) {
  // A toy "load metric": weight units of work split across the component.
  const double mine = static_cast<double>(weight) / comm.size();
  return minimpi::allreduce_value(comm, mine, minimpi::op::Sum{}) /
         comm.size();
}

void model_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  constexpr int kTotal = 8;
  const mph::RegistrySource phase1 =
      mph::RegistrySource::from_text(phase_registry(6, kTotal));

  mph::Mph h = mph::Mph::components_setup(world, phase1,
                                          {"atmosphere", "ocean"});

  // --- §9a: node-local view of my component. -----------------------------
  const minimpi::Topology topo = minimpi::Topology::uniform(kTotal, 4);
  const minimpi::Comm node = h.node_comm(topo);
  if (h.local_proc_id() == 0 && world.rank() == h.exe_low_proc_limit()) {
    std::printf("[phase 1] %s\n", h.directory().describe().c_str());
  }
  if (node.rank() == 0) {
    std::printf("[phase 1] %s: node %d hosts %d of my %d ranks\n",
                h.comp_name().c_str(), h.node_id(topo), node.size(),
                h.comp_comm().size());
  }

  // Phase-1 workload: the ocean is overloaded (few ranks, heavy work).
  const double load = fake_workload(h.comp_comm(),
                                    h.comp_name() == "ocean" ? 96 : 24);
  if (h.local_proc_id() == 0) {
    std::printf("[phase 1] %s: per-rank load %.1f\n", h.comp_name().c_str(),
                load);
  }

  // --- §9b: rebalance — ocean gets 6 ranks, atmosphere 2. -----------------
  const mph::RegistrySource phase2 =
      mph::RegistrySource::from_text(phase_registry(2, kTotal));
  mph::Mph h2 = h.remap(phase2);

  if (h2.local_proc_id() == 0 && world.rank() == h2.exe_low_proc_limit()) {
    std::printf("[phase 2] %s\n", h2.directory().describe().c_str());
  }
  const double load2 = fake_workload(h2.comp_comm(),
                                     h2.comp_name() == "ocean" ? 96 : 24);
  if (h2.local_proc_id() == 0) {
    std::printf("[phase 2] %s: per-rank load %.1f\n", h2.comp_name().c_str(),
                load2);
  }
}

}  // namespace

int main() {
  const minimpi::JobReport report =
      minimpi::run_mpmd({{"model", 8, model_main, {}}});
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("dynamic_remap: OK (job moved %llu messages, %llu bytes)\n",
              static_cast<unsigned long long>(report.stats.messages),
              static_cast<unsigned long long>(report.stats.payload_bytes));
  return 0;
}
