// ccsm_coupled — the paper's flagship scenario: a CCSM-like coupled
// climate system (atmosphere, ocean, land, sea ice, flux coupler) wired in
// MCME mode (§4.3): two multi-component executables plus a single-component
// coupler, with per-component log files via MPH_redirect_output (§5.4).
//
// Executable 1: atmosphere + land   (land on 1 rank, atm on 3)
// Executable 2: ocean + ice         (ice on 1 rank, ocean on 3)
// Executable 3: coupler             (1 rank)
//
// Run:   ./ccsm_coupled [intervals]
// Logs:  logs/atmosphere.log logs/ocean.log logs/land.log logs/ice.log
//        logs/coupler.log plus logs/mph_combined.log for non-root ranks.
// Trace: logs/ccsm_trace.json — an mph_trace timeline with one named track
//        per component rank (load it in Perfetto / chrome://tracing, or
//        summarize with `mph_inspect trace logs/ccsm_trace.json`).
// Live:  the mph_mon monitor is on — while the job runs, watch it with
//        `mph_inspect top logs/mph_monitor.sock`; afterwards the snapshot
//        history survives in logs/mph_metrics.jsonl
//        (`mph_inspect top logs/mph_metrics.jsonl --once`).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/climate/scenario.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/prof/profile.hpp"
#include "src/mph/mph.hpp"

namespace {

const std::string kRegistry = R"(BEGIN
Multi_Component_Begin  ! executable 1: atmosphere model with land module
atmosphere 0 2
land       3 3
Multi_Component_End
Multi_Component_Begin  ! executable 2: ocean model with ice module
ocean 0 2
ice   3 3
Multi_Component_End
coupler                ! executable 3: the flux coupler
END
)";

mph::climate::ClimateConfig make_config(int intervals) {
  mph::climate::ClimateConfig cfg;
  cfg.atm_nlon = 48;
  cfg.atm_nlat = 24;
  cfg.ocn_nlon = 72;
  cfg.ocn_nlat = 36;
  cfg.steps_per_interval = 4;
  cfg.intervals = intervals;
  return cfg;
}

void component_main(const minimpi::Comm& world,
                    const std::vector<std::string>& names, int intervals) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), names);
  h.redirect_output();  // default "logs/"
  h.out() << h.comp_name() << " up: " << h.comp_comm().size()
          << " processes, world ranks " << h.exe_low_proc_limit() << ".."
          << h.exe_up_proc_limit() << std::endl;

  const mph::climate::ComponentResult result =
      mph::climate::run_coupled_component(h, make_config(intervals));

  if (h.local_proc_id() == 0 && !result.mean_series.empty()) {
    h.out() << result.component << " interval means:";
    for (double m : result.mean_series) {
      h.out() << ' ' << m;
    }
    h.out() << std::endl;
  }
  if (result.component == "coupler" && h.local_proc_id() == 0) {
    std::printf("interval |  mean T_atm |  mean SST | mean ice fraction\n");
    for (std::size_t i = 0; i < result.coupler.mean_sst.size(); ++i) {
      std::printf("%8zu | %11.4f | %9.4f | %17.4f\n", i,
                  result.coupler.mean_t_atm[i], result.coupler.mean_sst[i],
                  result.coupler.mean_icefrac[i]);
    }
  }
  h.flush_output();
}

}  // namespace

int main(int argc, char** argv) {
  const int intervals = argc > 1 ? std::atoi(argv[1]) : 6;
  if (intervals <= 0) {
    std::fprintf(stderr, "usage: %s [intervals>0]\n", argv[0]);
    return 2;
  }
  minimpi::JobOptions options;
  options.trace.enabled = true;  // MINIMPI_TRACE can still raise capacity
  options.monitor.enabled = true;  // live view: mph_inspect top logs/...
  options.monitor.interval = std::chrono::milliseconds(100);
  const minimpi::JobReport report = minimpi::run_mpmd(
      {
      {"atm-land", 4,
       [&](const minimpi::Comm& w, const minimpi::ExecEnv&) {
         component_main(w, {"atmosphere", "land"}, intervals);
       },
       {}},
      {"ocn-ice", 4,
       [&](const minimpi::Comm& w, const minimpi::ExecEnv&) {
         component_main(w, {"ocean", "ice"}, intervals);
       },
       {}},
      {"coupler", 1,
       [&](const minimpi::Comm& w, const minimpi::ExecEnv&) {
         component_main(w, {"coupler"}, intervals);
       },
       {}},
      },
      options);
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  if (report.trace.has_value()) {
    const std::string trace_path = "logs/ccsm_trace.json";
    std::ofstream out(trace_path);
    out << report.trace->to_chrome_json();
    if (out) {
      std::printf("trace written to %s (Perfetto/chrome://tracing)\n",
                  trace_path.c_str());
    }

    // Causal bottleneck summary: who owns the critical path, and how much
    // of the wall the accounting covers.  `mph_prof report logs/
    // ccsm_trace.json` prints the full breakdown + what-ifs.
    const minimpi::prof::Profile profile =
        minimpi::prof::Graph::build(*report.trace).profile();
    const auto blame = profile.components();
    std::printf("critical path: %.3f ms of %.3f ms wall (%.1f%%)\n",
                static_cast<double>(profile.path_total_ns) / 1e6,
                static_cast<double>(profile.wall_ns()) / 1e6,
                profile.wall_ns() > 0
                    ? 100.0 * static_cast<double>(profile.path_total_ns) /
                          static_cast<double>(profile.wall_ns())
                    : 0.0);
    for (std::size_t i = 0; i < blame.size() && i < 3; ++i) {
      std::printf("  blame #%zu: %-12s %.1f%%\n", i + 1,
                  blame[i].component.c_str(), 100.0 * blame[i].share);
    }
    std::printf("full report: mph_prof report %s\n", trace_path.c_str());
  }
  if (report.metrics.has_value()) {
    std::printf(
        "metrics history in logs/mph_metrics.jsonl "
        "(view: mph_inspect top logs/mph_metrics.jsonl --once)\n");
  }
  std::printf("ccsm_coupled: OK (%d coupling intervals)\n", intervals);
  return 0;
}
