// quickstart — the smallest complete MPH application (paper §4.1 shape).
//
// Three single-component executables (atmosphere, ocean, coupler) are
// launched as one MPMD job.  Each calls MPH_components_setup with its own
// name-tag, discovers the others through the registration file, and
// exchanges a value through the coupler.
//
// Run:   ./quickstart
// The registration file is embedded below; in a real deployment it would
// be the `processors_map.in` next to the job script.
#include <cstdio>
#include <string>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"

namespace {

const std::string kRegistry = R"(BEGIN
atmosphere
ocean
coupler
END
)";

/// The atmosphere executable: 2 processes.
void atmosphere_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), {"atmosphere"});

  // My component communicator, exactly like the paper's atmosphere_World.
  const minimpi::Comm& atmosphere_world = h.comp_comm();
  const double local_t = 15.0 + atmosphere_world.rank();  // fake temperature
  const double mean_t = minimpi::allreduce_value(atmosphere_world, local_t,
                                                 minimpi::op::Sum{}) /
                        atmosphere_world.size();

  // Component root reports the field to the coupler by name (§5.2).
  if (h.local_proc_id() == 0) {
    h.send(mean_t, "coupler", 0, /*tag=*/1);
    double sst = 0;
    h.recv(sst, "coupler", 0, /*tag=*/2);
    std::printf("[atmosphere] sent mean T=%.2f, coupler returned SST=%.2f\n",
                mean_t, sst);
  }
}

/// The ocean executable: 2 processes.
void ocean_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), {"ocean"});
  const double sst = 9.5;
  if (h.local_proc_id() == 0) {
    h.send(sst, "coupler", 0, /*tag=*/1);
    double t_atm = 0;
    h.recv(t_atm, "coupler", 0, /*tag=*/2);
    std::printf("[ocean]      sent SST=%.2f, coupler returned T=%.2f\n", sst,
                t_atm);
  }
}

/// The coupler executable: 1 process, swaps the two fields.
void coupler_main(const minimpi::Comm& world, const minimpi::ExecEnv&) {
  mph::Mph h = mph::Mph::components_setup(
      world, mph::RegistrySource::from_text(kRegistry), {"coupler"});

  std::printf("[coupler] application has %d components on %d processes:\n",
              h.total_components(), world.size());
  for (const mph::ComponentRecord& c : h.directory().components()) {
    std::printf("[coupler]   %-10s -> world ranks %d..%d\n", c.name.c_str(),
                c.global_low, c.global_high);
  }

  double t_atm = 0, sst = 0;
  h.recv(t_atm, "atmosphere", 0, 1);
  h.recv(sst, "ocean", 0, 1);
  h.send(sst, "atmosphere", 0, 2);
  h.send(t_atm, "ocean", 0, 2);
  std::printf("[coupler] exchanged T=%.2f <-> SST=%.2f\n", t_atm, sst);
}

}  // namespace

int main() {
  // The MPMD command file: `-pgmmodel mpmd` territory on a real machine.
  const minimpi::JobReport report = minimpi::run_mpmd({
      {"atmosphere", 2, atmosphere_main, {}},
      {"ocean", 2, ocean_main, {}},
      {"coupler", 1, coupler_main, {}},
  });
  if (!report.ok) {
    std::fprintf(stderr, "job failed: %s\n", report.abort_reason.c_str());
    return 1;
  }
  std::printf("quickstart: OK\n");
  return 0;
}
